//! The §5.4 user-trace connectivity simulation (Fig 16).
//!
//! The paper's methodology, implemented verbatim: "we divide time into 1 ms
//! slots. The prototype's link starts with a perfectly aligned beam.
//! Whenever the head/VRH position is reported (roughly every 10 ms), the TP
//! mechanism aligns the beam in 1–2 ms with a lateral and angular error of
//! 4.54 mm and 4.54/1.75 mrad respectively ... In between two position
//! reports r and r′, the beam drifts laterally (angularly) at a rate of
//! d(r,r′)/t(r′,r) per ms ... In any timeslot, if the total angular or
//! lateral drift is more than the link's angular (8.73 mrad) or lateral
//! (6 mm) tolerance, the link is marked as disconnected in that timeslot."
//!
//! Since the engine refactor the slot loop lives in
//! [`crate::engine::TraceSession`]; [`simulate_trace`] drives it under
//! [`run_slots`](crate::engine::run_slots), bit-identically to the
//! pre-refactor loop.
//!
//! **Deprecation note.** The [`simulate_trace`]/[`simulate_corpus`] free
//! functions are kept for the Fig-16 binaries and older tests; new code
//! that needs per-slot control or telemetry should drive
//! [`crate::engine::TraceSession`] through [`run_slots`](crate::engine::run_slots) directly.

use crate::engine::{FallbackPolicy, LinkPolicy, TraceSession};
use crate::sfp_state::SfpLinkState;
use cyclops_vrh::traces::HeadTrace;

/// Parameters of the §5.4 simulation — defaults are the paper's 25G values.
#[derive(Debug, Clone, Copy)]
pub struct TraceSimParams {
    /// Slot length (ms).
    pub slot_ms: f64,
    /// TP realignment completion latency after a report (ms).
    pub realign_latency_ms: f64,
    /// Residual lateral error right after realignment (m) — Table 2's
    /// combined average.
    pub residual_lat_m: f64,
    /// Residual angular error right after realignment (rad) — 4.54 mm over
    /// the 1.75 m link.
    pub residual_ang_rad: f64,
    /// Lateral tolerance (m) — §5.3.1's 6 mm for the 25G link.
    pub tol_lat_m: f64,
    /// Angular tolerance (rad) — §5.3.1's 8.73 mrad.
    pub tol_ang_rad: f64,
    /// Probability a position report is lost on the control channel
    /// (0 = the paper's reliable-channel assumption). Decisions are keyed
    /// `mix64(loss_seed, report_index)`, so results are reproducible and
    /// identical at any thread count.
    pub report_loss_prob: f64,
    /// Seed of the report-loss decisions.
    pub loss_seed: u64,
    /// Dead reckoning: on a lost report, realign anyway from the
    /// constant-velocity extrapolation — with the residual error inflated by
    /// [`TraceSimParams::dr_residual_scale`]. Without it a lost report
    /// simply skips the realignment and drift keeps accruing.
    pub dead_reckoning: bool,
    /// Residual-error multiplier for dead-reckoned realignments (the
    /// extrapolated pose is less accurate than a measured one).
    pub dr_residual_scale: f64,
}

impl Default for TraceSimParams {
    fn default() -> Self {
        TraceSimParams {
            slot_ms: 1.0,
            realign_latency_ms: 1.5,
            residual_lat_m: 4.54e-3,
            residual_ang_rad: 4.54e-3 / 1.75,
            tol_lat_m: 6.0e-3,
            tol_ang_rad: 8.73e-3,
            report_loss_prob: 0.0,
            loss_seed: 0,
            dead_reckoning: false,
            dr_residual_scale: 2.0,
        }
    }
}

/// Result of simulating one trace.
#[derive(Debug, Clone)]
pub struct TraceSimResult {
    /// Per-slot connectivity.
    pub slots_on: Vec<bool>,
    /// Fraction of slots connected.
    pub on_fraction: f64,
}

impl TraceSimResult {
    /// Number of disconnected slots.
    pub fn off_slots(&self) -> usize {
        self.slots_on.iter().filter(|&&b| !b).count()
    }

    /// §5.4's clustering metric: fraction of off-slots that fall in frames
    /// (30 contiguous slots) containing fewer than `threshold` off-slots —
    /// "widely scattered off-timeslots should have minimal impact on user
    /// experience". The paper reports > 60 % at threshold 10.
    ///
    /// Edge cases: with no off-slots at all the fraction is 1.0 (vacuously
    /// perfectly scattered); `frame_slots == 0` defines no frames, so no
    /// off-slot counts as scattered and the fraction is 0.0. A trailing
    /// partial frame is counted like any other (its off-count can only be
    /// lower).
    pub fn off_slot_scatter_fraction(&self, frame_slots: usize, threshold: usize) -> f64 {
        let total_off = self.off_slots();
        if total_off == 0 {
            return 1.0;
        }
        if frame_slots == 0 {
            return 0.0;
        }
        let mut scattered = 0usize;
        for frame in self.slots_on.chunks(frame_slots) {
            let off = frame.iter().filter(|&&b| !b).count();
            if off < threshold {
                scattered += off;
            }
        }
        scattered as f64 / total_off as f64
    }
}

/// Outcome of replaying a trace's per-slot alignment through the SFP
/// re-lock machine and the hybrid-fallback policy
/// ([`replay_with_fallback`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackReplay {
    /// Fraction of slots with the FSO link up (after SFP re-lock).
    pub fso_up_frac: f64,
    /// Fraction of slots carried by the RF fallback (0 with the policy
    /// off).
    pub rf_frac: f64,
    /// Fraction of slots delivering data on either medium.
    pub up_frac: f64,
    /// Mean delivered rate over the run (Gbps): FSO rate on FSO slots, RF
    /// rate on RF slots, zero otherwise.
    pub effective_gbps: f64,
    /// FSO → RF failovers.
    pub failovers: u64,
}

/// Replays a trace's per-slot optical alignment (`slots_on`, e.g.
/// [`TraceSimResult::slots_on`]) through the SFP link-state machine (the
/// multi-second `relink_s` re-lock of §5.3) and then the hybrid FSO/RF
/// [`LinkPolicy`] — the Fig 16 fallback ablation: what the availability CDF
/// looks like when an outage degrades to `rf_rate_gbps` instead of zero.
///
/// Deterministic and RNG-free; with [`FallbackPolicy::Off`] the RF leg is
/// skipped entirely and `up_frac == fso_up_frac` (availability is exactly
/// the pure-FSO replay).
pub fn replay_with_fallback(
    slots_on: &[bool],
    slot_ms: f64,
    relink_s: f64,
    fallback: FallbackPolicy,
    rf_rate_gbps: f64,
    fso_rate_gbps: f64,
) -> FallbackReplay {
    let dt = slot_ms * 1e-3;
    let mut sfp = SfpLinkState::new_up(relink_s);
    let mut policy = match fallback {
        FallbackPolicy::Off => None,
        FallbackPolicy::RfOnOutage => Some(LinkPolicy::default()),
    };
    let mut n_fso = 0usize;
    let mut n_rf = 0usize;
    let mut n_up = 0usize;
    let mut rate_sum = 0.0;
    for &aligned in slots_on {
        let up = sfp.step(aligned, dt);
        let rf = policy.as_mut().is_some_and(|p| p.step(up, dt));
        n_fso += up as usize;
        n_rf += rf as usize;
        n_up += (up || rf) as usize;
        // During the failback hold traffic stays on RF even while FSO is
        // instantaneously up — same accounting as the engine.
        rate_sum += if rf {
            rf_rate_gbps
        } else if up {
            fso_rate_gbps
        } else {
            0.0
        };
    }
    let n = slots_on.len().max(1) as f64;
    FallbackReplay {
        fso_up_frac: n_fso as f64 / n,
        rf_frac: n_rf as f64 / n,
        up_frac: n_up as f64 / n,
        effective_gbps: rate_sum / n,
        failovers: policy.map_or(0, |p| p.n_failovers()),
    }
}

/// Simulates link connectivity over one head-motion trace with the paper's
/// drift model.
pub fn simulate_trace(trace: &HeadTrace, p: &TraceSimParams) -> TraceSimResult {
    let n_slots = ((trace.duration_s() * 1e3) / p.slot_ms).floor() as usize;
    let mut session = TraceSession::new(trace, *p);
    // The fused runner is bit-identical to `run_slots(&mut session, n_slots)`
    // (pinned by the trace_corpus engine-digest golden and the
    // `fused_run_matches_step_slot_exactly` test) and ~40× faster.
    let slots_on = session.run(n_slots);
    let on = slots_on.iter().filter(|&&b| b).count();
    let on_fraction = on as f64 / slots_on.len().max(1) as f64;
    TraceSimResult {
        slots_on,
        on_fraction,
    }
}

/// Simulates a corpus of traces, returning each trace's on-fraction — the
/// distribution behind Fig 16's CDF.
///
/// Traces are independent and the simulation is pure, so under the
/// `parallel` feature they are evaluated on worker threads and collected in
/// input order — bit-identical to the serial loop.
pub fn simulate_corpus(traces: &[HeadTrace], p: &TraceSimParams) -> Vec<f64> {
    // Counting path: same fused loop as `simulate_trace`, no per-slot
    // vector — the CDF only needs each trace's on-fraction.
    let one = |t: &HeadTrace| {
        let n_slots = ((t.duration_s() * 1e3) / p.slot_ms).floor() as usize;
        let on = TraceSession::new(t, *p).run_count(n_slots);
        on as f64 / n_slots.max(1) as f64
    };
    #[cfg(feature = "parallel")]
    let fracs = cyclops_par::par_map(traces, 1, one);
    #[cfg(not(feature = "parallel"))]
    let fracs: Vec<f64> = traces.iter().map(one).collect();
    fracs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_slots;
    use cyclops_geom::quat::Quat;
    use cyclops_geom::vec3::{v3, Vec3};
    use cyclops_vrh::traces::{TraceGenConfig, TraceSample};

    /// A trace moving at constant linear/angular speed.
    fn uniform_trace(lin_mps: f64, ang_rps: f64, secs: f64) -> HeadTrace {
        let n = (secs * 100.0) as usize + 1;
        let samples = (0..n)
            .map(|i| {
                let t = i as f64 * 0.01;
                TraceSample {
                    t_ms: t * 1e3,
                    pos: v3(lin_mps * t, 0.0, 0.0),
                    quat: Quat::from_axis_angle(Vec3::Y, ang_rps * t),
                }
            })
            .collect();
        HeadTrace::new(10.0, samples)
    }

    #[test]
    fn stationary_trace_is_fully_connected() {
        let tr = uniform_trace(0.0, 0.0, 10.0);
        let r = simulate_trace(&tr, &TraceSimParams::default());
        assert_eq!(r.on_fraction, 1.0);
        assert_eq!(r.off_slots(), 0);
    }

    #[test]
    fn slow_motion_stays_connected() {
        // 10 cm/s: lateral budget per 10 ms = 1 mm ≪ (6 − 4.54) mm.
        let tr = uniform_trace(0.10, 0.1, 10.0);
        let r = simulate_trace(&tr, &TraceSimParams::default());
        assert!(r.on_fraction > 0.999, "{}", r.on_fraction);
    }

    #[test]
    fn threshold_speed_matches_paper_budget() {
        // The lateral budget is (6 − 4.54) mm per 10 ms interval → the
        // critical linear speed is ≈ 14.6 cm/s: slots late in each interval
        // disconnect above it.
        let below = simulate_trace(&uniform_trace(0.13, 0.0, 10.0), &TraceSimParams::default());
        let above = simulate_trace(&uniform_trace(0.18, 0.0, 10.0), &TraceSimParams::default());
        assert!(below.on_fraction > 0.99, "below {}", below.on_fraction);
        assert!(above.on_fraction < 0.9, "above {}", above.on_fraction);
    }

    #[test]
    fn angular_threshold_matches_paper_budget() {
        // Angular budget (8.73 − 2.59) mrad per 10 ms → ≈ 0.61 rad/s
        // (35 deg/s).
        let below = simulate_trace(&uniform_trace(0.0, 0.45, 10.0), &TraceSimParams::default());
        let above = simulate_trace(&uniform_trace(0.0, 0.9, 10.0), &TraceSimParams::default());
        assert!(below.on_fraction > 0.99, "below {}", below.on_fraction);
        assert!(above.on_fraction < 0.9, "above {}", above.on_fraction);
    }

    #[test]
    fn generated_corpus_availability_matches_fig16() {
        // A small corpus (the Fig 16 harness runs the full 500): overall
        // availability should land in the high-90s with per-trace spread.
        let traces: Vec<HeadTrace> = (0..20)
            .map(|i| HeadTrace::generate(&TraceGenConfig::default(), 9000 + i))
            .collect();
        let fracs = simulate_corpus(&traces, &TraceSimParams::default());
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        assert!((0.93..1.0).contains(&mean), "mean availability {mean}");
    }

    #[test]
    fn scatter_metric_distinguishes_clustered_outages() {
        // All-off frame vs scattered singles.
        let mut clustered = vec![true; 300];
        for s in clustered.iter_mut().take(60).skip(30) {
            *s = false;
        }
        let r1 = TraceSimResult {
            on_fraction: 0.9,
            slots_on: clustered,
        };
        assert_eq!(r1.off_slot_scatter_fraction(30, 10), 0.0);

        let mut scattered = vec![true; 300];
        for i in (0..300).step_by(30) {
            scattered[i] = false;
        }
        let r2 = TraceSimResult {
            on_fraction: 0.97,
            slots_on: scattered,
        };
        assert_eq!(r2.off_slot_scatter_fraction(30, 10), 1.0);
    }

    #[test]
    fn scatter_metric_edge_cases_are_pinned() {
        // Empty record list: no off-slots → vacuously 1.0.
        let empty = TraceSimResult {
            on_fraction: 1.0,
            slots_on: vec![],
        };
        assert_eq!(empty.off_slot_scatter_fraction(30, 10), 1.0);
        // frame_slots == 0 must not panic (chunks(0) would): no frames
        // exist, so nothing is scattered.
        let some_off = TraceSimResult {
            on_fraction: 0.5,
            slots_on: vec![true, false, true, false],
        };
        assert_eq!(some_off.off_slot_scatter_fraction(0, 10), 0.0);
        // Trailing partial frame still counts its off-slots.
        let partial_tail = TraceSimResult {
            on_fraction: 0.97,
            slots_on: {
                let mut s = vec![true; 35];
                s[33] = false; // lives in the 5-slot tail frame
                s
            },
        };
        assert_eq!(partial_tail.off_slot_scatter_fraction(30, 10), 1.0);
        // All-off with threshold 0: nothing can be under the threshold.
        let all_off = TraceSimResult {
            on_fraction: 0.0,
            slots_on: vec![false; 60],
        };
        assert_eq!(all_off.off_slot_scatter_fraction(30, 0), 0.0);
    }

    #[test]
    fn report_loss_degrades_availability_and_dead_reckoning_recovers_it() {
        // Rotation at 0.45 rad/s: 4.5 mrad per 10 ms interval — inside the
        // clean angular budget (8.73 − 2.59 = 6.14 mrad) and still inside
        // the dead-reckoned one (8.73 − 1.2·2.59 = 5.62 mrad), but a single
        // skipped realignment doubles the drift past tolerance.
        let tr = uniform_trace(0.0, 0.45, 20.0);
        let clean = simulate_trace(&tr, &TraceSimParams::default());
        let lossy = simulate_trace(
            &tr,
            &TraceSimParams {
                report_loss_prob: 0.30,
                loss_seed: 41,
                ..Default::default()
            },
        );
        let dr = simulate_trace(
            &tr,
            &TraceSimParams {
                report_loss_prob: 0.30,
                loss_seed: 41,
                dead_reckoning: true,
                dr_residual_scale: 1.2,
                ..Default::default()
            },
        );
        assert!(
            lossy.on_fraction < clean.on_fraction - 0.02,
            "loss must hurt: clean {} lossy {}",
            clean.on_fraction,
            lossy.on_fraction
        );
        assert!(
            dr.on_fraction > lossy.on_fraction,
            "DR must recover: lossy {} dr {}",
            lossy.on_fraction,
            dr.on_fraction
        );
        // DR recovers most of the gap.
        let gap = clean.on_fraction - lossy.on_fraction;
        let recovered = dr.on_fraction - lossy.on_fraction;
        assert!(recovered > 0.5 * gap, "recovered {recovered} of gap {gap}");
    }

    #[test]
    fn lossy_trace_sim_is_deterministic_per_seed() {
        let tr = uniform_trace(0.14, 0.4, 10.0);
        let p = TraceSimParams {
            report_loss_prob: 0.2,
            loss_seed: 1234,
            dead_reckoning: true,
            ..Default::default()
        };
        let a = simulate_trace(&tr, &p);
        let b = simulate_trace(&tr, &p);
        assert_eq!(a.slots_on, b.slots_on);
        assert_eq!(a.on_fraction.to_bits(), b.on_fraction.to_bits());
        // And a different seed actually changes the loss pattern.
        let c = simulate_trace(&tr, &TraceSimParams { loss_seed: 77, ..p });
        assert_ne!(a.slots_on, c.slots_on, "seed must matter");
    }

    #[test]
    fn fused_run_matches_step_slot_exactly() {
        // The fused TraceSession::run must equal the naive per-slot loop
        // bit-for-bit, across loss/DR configurations, generated and uniform
        // traces, and non-default slot lengths (including slot/report-period
        // ratios that stress the segment-boundary comparisons).
        let mut cases: Vec<(HeadTrace, TraceSimParams)> = vec![
            (uniform_trace(0.0, 0.0, 5.0), TraceSimParams::default()),
            (uniform_trace(0.14, 0.4, 10.0), TraceSimParams::default()),
            (
                uniform_trace(0.18, 0.0, 10.0),
                TraceSimParams {
                    slot_ms: 0.5,
                    ..Default::default()
                },
            ),
            (
                uniform_trace(0.1, 0.6, 10.0),
                TraceSimParams {
                    slot_ms: 0.7, // non-divisor of the 10 ms report period
                    realign_latency_ms: 1.3,
                    ..Default::default()
                },
            ),
        ];
        for i in 0..6 {
            cases.push((
                HeadTrace::generate(&TraceGenConfig::default(), 9_100 + i),
                TraceSimParams {
                    report_loss_prob: 0.2,
                    loss_seed: 41,
                    dead_reckoning: i % 2 == 0,
                    ..Default::default()
                },
            ));
        }
        for (trace, p) in &cases {
            let n_slots = ((trace.duration_s() * 1e3) / p.slot_ms).floor() as usize;
            let naive = run_slots(&mut TraceSession::new(trace, *p), n_slots);
            let fused = TraceSession::new(trace, *p).run(n_slots);
            assert_eq!(naive, fused, "fused run diverged (p = {p:?})");
            let count = TraceSession::new(trace, *p).run_count(n_slots);
            let expect = naive.iter().filter(|&&b| b).count();
            assert_eq!(count, expect, "counting run diverged (p = {p:?})");
        }
    }

    #[test]
    fn fallback_replay_off_equals_pure_fso_and_on_only_improves() {
        // A mid-trace alignment loss long enough to drop the SFP, with the
        // multi-second re-lock afterwards.
        let mut slots_on = vec![true; 4000];
        for s in slots_on.iter_mut().take(1200).skip(1000) {
            *s = false;
        }
        let off = replay_with_fallback(&slots_on, 1.0, 2.5, FallbackPolicy::Off, 2.31, 23.5);
        let on = replay_with_fallback(&slots_on, 1.0, 2.5, FallbackPolicy::RfOnOutage, 2.31, 23.5);
        // Off: no RF leg at all; availability is the pure-FSO replay.
        assert_eq!(off.rf_frac, 0.0);
        assert_eq!(off.failovers, 0);
        assert_eq!(off.up_frac, off.fso_up_frac);
        // The outage is real: 200 dark slots + 2.5 s re-lock.
        assert!(off.fso_up_frac < 0.4, "{}", off.fso_up_frac);
        // On: the FSO timeline is untouched, RF covers the hole.
        assert_eq!(on.fso_up_frac.to_bits(), off.fso_up_frac.to_bits());
        assert_eq!(on.failovers, 1);
        assert!(on.rf_frac > 0.5, "{}", on.rf_frac);
        assert!(on.up_frac > 0.99, "{}", on.up_frac);
        assert!(on.effective_gbps > off.effective_gbps);
        // RF is a degraded medium: effective rate sits strictly between
        // the outage-punched FSO rate and full FSO rate.
        assert!(on.effective_gbps < 23.5);
    }

    #[test]
    fn fallback_replay_is_deterministic() {
        let tr = uniform_trace(0.16, 0.3, 10.0);
        let r = simulate_trace(&tr, &TraceSimParams::default());
        let a = replay_with_fallback(
            &r.slots_on,
            1.0,
            2.5,
            FallbackPolicy::RfOnOutage,
            2.31,
            23.5,
        );
        let b = replay_with_fallback(
            &r.slots_on,
            1.0,
            2.5,
            FallbackPolicy::RfOnOutage,
            2.31,
            23.5,
        );
        assert_eq!(a, b);
        assert!(a.up_frac >= a.fso_up_frac);
    }

    #[test]
    fn perfect_tp_never_disconnects_at_moderate_speed() {
        // With zero residual error the budget doubles.
        let p = TraceSimParams {
            residual_lat_m: 0.0,
            residual_ang_rad: 0.0,
            ..Default::default()
        };
        let r = simulate_trace(&uniform_trace(0.25, 0.0, 5.0), &p);
        // 0.25 m/s × 10 ms = 2.5 mm < 6 mm → fully connected.
        assert!(r.on_fraction > 0.999, "{}", r.on_fraction);
    }
}
