//! # cyclops-link
//!
//! The data plane of the Cyclops reproduction: what happens to *bits* once
//! the optics deliver (or fail to deliver) photons.
//!
//! * [`channel`] — received power → BER → frame-loss, anchored at the SFP's
//!   specified sensitivity (BER 10⁻¹² at sensitivity, Gaussian-noise OOK
//!   scaling above/below);
//! * [`crc`] / [`framing`] — CRC-32 framing used by the loss accounting and
//!   the quickstart examples;
//! * [`control`] — the reliable control channel (sequence-numbered ARQ
//!   with dedup, timeouts and capped backoff) and the deterministic
//!   fault-injection layer (`FaultPlan`) behind the chaos suite;
//! * [`sfp_state`] — the link up/down state machine with the multi-second
//!   re-lock the paper observed ("once the link is lost, it takes a few
//!   seconds to regain", §5.3);
//! * [`iperf`] — 50 ms-window goodput measurement, the paper's iperf \[42\]
//!   methodology;
//! * [`engine`] — the unified slot-clocked simulation engine: one scheduler
//!   driving pluggable components (motion source, TP policy, control plane,
//!   channel model, TX selector), plus multi-session fleet workloads; new
//!   code enters through [`engine::LinkSession::builder`];
//! * [`telemetry`] — deterministic engine observability: slot/TP/control/
//!   SFP/handover events, counter + histogram aggregation, a JSONL sink,
//!   and the virtual clock that keeps instrumented runs bit-identical;
//! * [`registry`] — the hardware device registry: data-driven
//!   SFP/galvo/headset capability profiles with named presets and a
//!   validating builder, so fleets mix heterogeneous hardware;
//! * [`trace_sim`] — the §5.4 user-trace connectivity simulation (Fig 16),
//!   implemented with exactly the paper's drift/tolerance methodology — a
//!   trace engine session;
//! * [`handover`] — the multi-TX occlusion/handover extension sketched in
//!   §3 ("to circumvent occasional occlusions ... multiple TXs on the
//!   ceiling with appropriate handover techniques") — geometric model.
//!
//! The composable environment layer (fog, rain, scintillation, human
//! occluders) lives in [`channel`] as [`channel::EnvStage`] stacks; attach
//! one to a session via [`engine::SessionBuilder::environment`] or a fleet
//! via `FleetConfig`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod channel;
pub mod control;
pub mod crc;
pub mod engine;
pub mod framing;
pub mod handover;
pub mod iperf;
#[doc(hidden)]
pub mod multi_tx;
pub mod registry;
pub mod sched;
pub mod sfp_state;
#[doc(hidden)]
pub mod simulator;
pub mod telemetry;
pub mod trace_sim;
pub mod traffic;
pub mod video;

pub use channel::{
    EnvChannel, EnvStage, Environment, FogStage, FsoChannel, HumanOccluderStage, RainStage,
    RfChannel, ScintillationStage,
};
pub use control::{
    slots_in, ArqConfig, ControlLink, ControlPlaneConfig, ControlStats, DeadReckoningConfig,
    FaultPlan, FlapSchedule, ReacqConfig,
};
pub use engine::{
    run_fleet, run_slots, BestMargin, DarkDebounce, EngineConfig, EngineConfigError, EngineSlot,
    FallbackPolicy, FirstReport, FleetConfig, FleetConfigBuilder, FleetRollup, FleetSummary,
    LinkPolicy, LinkSession, MarginSelector, RfStats, SessionBuilder, SessionReport, SessionStats,
    SingleTx, SlotSession, TxInstallation, TxSelector,
};
pub use engine::{run_fleet_mixed, FleetPool};
pub use framing::Frame;
pub use iperf::ThroughputMeter;
pub use multi_tx::MultiTxSimulator;
pub use registry::{
    galvo_profile, galvo_profiles, headset_profile, headset_profiles, sfp_profile, sfp_profiles,
    GalvoProfile, GalvoProfileDef, HardwareProfile, HardwareProfileBuilder, HeadsetProfile,
    HeadsetProfileDef, RegistryError, SfpProfile, SfpProfileDef,
};
pub use sfp_state::SfpLinkState;
pub use simulator::{LinkSimConfig, LinkSimulator, SlotRecord};
pub use telemetry::{
    CommandSource, DropReason, Histogram, JsonlSink, NullSink, SessionTelemetry, Telemetry,
    TelemetryCounters, TelemetryEvent, TelemetrySink,
};
pub use trace_sim::{
    replay_with_fallback, simulate_trace, FallbackReplay, TraceSimParams, TraceSimResult,
};
