//! The unified simulation engine: one slot-clocked scheduler driving
//! pluggable components behind small traits.
//!
//! Every fixed-step simulation in the repo — the single-TX link simulator
//! (Figs 13–15), the full-physics multi-TX handover, the §5.4 trace drift
//! model, and the geometric handover sketch — is a *configuration* of this
//! engine rather than a bespoke loop:
//!
//! ```text
//!                      ┌────────────────────────────┐
//!                      │   run_slots (slot clock)   │
//!                      └─────────────┬──────────────┘
//!                                    │ step_slot(k)
//!                      ┌─────────────▼──────────────┐
//!   MotionSource ────▶ │                            │ ◀──── ControlPlane
//!   (vrh motion /      │     LinkSession<M, S>      │       (perfect or
//!    trace playback)   │                            │        ARQ + faults)
//!                      │  report → TP → optics →    │
//!   TxSelector ──────▶ │  channel → SFP → record    │ ◀──── ChannelModel
//!   (single / dark-    │                            │       (power → BER →
//!    debounce / margin)└─────────────┬──────────────┘        frame loss)
//!                                    │ TpPolicy (pending commands,
//!                                    ▼  dead reckoning, re-acq spiral)
//!                               EngineSlot
//! ```
//!
//! The components:
//!
//! * [`MotionSource`] — where the headset truly is (`vrh` motion models and
//!   trace playback);
//! * [`TpPolicy`] — what the TP does with reports: scheduled command queue,
//!   dead reckoning on stale channels, re-acquisition spiral on lost beams;
//! * [`ControlPlane`] — how reports travel: a perfect channel or the
//!   sequence-numbered ARQ stack over the deterministic fault layer;
//! * [`ChannelModel`] — what the photons deliver: received power → BER →
//!   frame-success (an alias of [`FsoChannel`]);
//! * [`TxSelector`] — which ceiling unit serves the headset: pinned
//!   ([`SingleTx`]), dark-time debounced nearest sibling ([`DarkDebounce`]),
//!   or margin-based ([`BestMargin`], [`MarginSelector`]).
//!
//! Determinism is the engine's core contract: every random draw comes from a
//! seeded per-deployment RNG or a `mix64` stream, and the slot loop touches
//! them in a fixed order, so any configuration replays bit-identically for a
//! given seed — on any platform, thread count and build configuration. The
//! `engine_digest` bench bin pins this against committed goldens.
//!
//! On top of single sessions the engine runs **multi-session workloads**
//! ([`run_fleet`]): N independently-seeded headsets, each against its own
//! clone of M TX installations, reduced in session-index order into a
//! [`FleetSummary`].
//!
//! Sessions are configured through validating builders —
//! [`LinkSession::builder`] / [`FleetConfig::builder`] — which check the
//! configuration up front (`Result<_, EngineConfigError>`) and inject
//! [`crate::telemetry`] observers at construction time. Telemetry is pure
//! observation: events are emitted only after every random draw of the slot
//! has happened, so attaching a sink cannot move the engine's RNG or float
//! streams (pinned by the `engine_digest` identity checks).

use crate::channel::{FsoChannel, RfChannel};
use crate::control::{unit, ControlLink, ControlPlaneConfig, ControlStats};
use crate::handover::Occluder;
use crate::sfp_state::SfpLinkState;
use crate::telemetry::{
    CommandSource, DropReason, ScopedTimer, SessionTelemetry, Telemetry, TelemetryEvent,
    TelemetrySink, VirtualClock,
};
use cyclops_core::deployment::Deployment;
use cyclops_core::mapping::noisy_report_of;
use cyclops_core::pointing::ReacqSpiral;
use cyclops_core::tp::{TpCommand, TpController, TpMetrics};
use cyclops_geom::pose::Pose;
use cyclops_geom::ray::Ray;
use cyclops_geom::vec3::Vec3;
use cyclops_optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops_vrh::motion::{extrapolate_pose, ArbitraryMotion, ArbitraryMotionConfig, Motion};
use cyclops_vrh::speeds::pose_speeds;
use cyclops_vrh::traces::HeadTrace;
use cyclops_vrh::tracking::TrackerConfig;
use rand::Rng;
use std::collections::VecDeque;

/// Where the headset truly is: the engine's motion component. This is the
/// `vrh` [`Motion`] trait under its engine-facing name — every motion model
/// (rails, rotation stages, hand-held OU processes, trace playback) plugs in
/// here.
pub use cyclops_vrh::motion::Motion as MotionSource;

/// What the photons deliver: received power → BER → frame success. The
/// engine's channel component is exactly the [`FsoChannel`] model.
pub type ChannelModel = FsoChannel;

// ---------------------------------------------------------------------------
// Slot clock
// ---------------------------------------------------------------------------

/// A simulation that advances in fixed slots under [`run_slots`].
///
/// The driver hands each session its slot *index*; the session derives its
/// own clock from it (sessions differ in how they accumulate time — the
/// full-physics session accumulates `t + slot_s` while the trace session
/// computes `(k + 1) · slot_ms` — and those float streams must be preserved
/// bit-exactly).
pub trait SlotSession {
    /// Per-slot output record.
    type Record;
    /// Advances one slot (index `k`, counted from 0 at the start of the
    /// current [`run_slots`] call) and returns its record.
    fn step_slot(&mut self, k: usize) -> Self::Record;
}

/// The engine's slot clock: drives `session` for `n_slots` slots and
/// collects the records in slot order.
pub fn run_slots<S: SlotSession>(session: &mut S, n_slots: usize) -> Vec<S::Record> {
    let mut out = Vec::with_capacity(n_slots);
    for k in 0..n_slots {
        out.push(session.step_slot(k));
    }
    out
}

/// Streaming form of [`run_slots`]: hands each record to `f` in slot order
/// instead of materializing the vector. Aggregating consumers (the fleet
/// runner folds a handful of sums per session) use this to keep a session's
/// memory footprint independent of its duration.
pub fn fold_slots<S: SlotSession>(session: &mut S, n_slots: usize, mut f: impl FnMut(S::Record)) {
    for k in 0..n_slots {
        f(session.step_slot(k));
    }
}

// ---------------------------------------------------------------------------
// Session configuration
// ---------------------------------------------------------------------------

/// When a TP command becomes optically effective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandTiming {
    /// Queued and applied after control-channel latency + TP compute + DAC
    /// and mirror settle — the single-TX simulator's timing model.
    Scheduled,
    /// Applied the moment the report is processed — the multi-TX
    /// simulator's simplification (its outages are dominated by the SFP
    /// re-lock, not steering latency).
    Immediate,
}

/// When the true headset pose is sampled and written into the unit worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoseTiming {
    /// Sampled per report, backdated to the report time, on the active
    /// unit; plus once at slot end on every unit — the single-TX model.
    AtReport,
    /// Sampled once at slot start and synced to every unit — the multi-TX
    /// model.
    SlotStart,
}

/// Full configuration of a [`LinkSession`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Slot length (seconds); the paper's studies use 1 ms.
    pub slot_s: f64,
    /// Tracking system timing/noise.
    pub tracker: TrackerConfig,
    /// Frame size for loss accounting (bits).
    pub frame_bits: u64,
    /// The §5.3 operator protocol: motion time freezes while the link is
    /// down.
    pub pause_on_outage: bool,
    /// Reliable control plane (fault-injected channel, optional ARQ, dead
    /// reckoning, re-acquisition). `None` preserves the legacy path —
    /// i.i.d. report loss drawn from the deployment RNG — bit-exactly.
    pub control: Option<ControlPlaneConfig>,
    /// Command timing model.
    pub command_timing: CommandTiming,
    /// Pose sampling model.
    pub pose_timing: PoseTiming,
    /// Account goodput through the BER channel (single-TX records use it;
    /// the multi-TX records don't).
    pub goodput: bool,
    /// Gate received power on occluder line of sight.
    pub los_gating: bool,
    /// Track per-slot true linear/angular speeds (costs one extra motion
    /// sample at the start of each run).
    pub track_speeds: bool,
    /// Hybrid FSO/RF fallback. [`FallbackPolicy::Off`] (the default) skips
    /// the fallback path entirely and preserves the pre-fallback slot
    /// stream bit-exactly.
    pub fallback: FallbackPolicy,
}

impl Default for EngineConfig {
    /// The single-TX profile: 1 ms slots, scheduled commands, per-report
    /// pose sampling, goodput accounting, no occluder gating.
    fn default() -> Self {
        EngineConfig {
            slot_s: 1e-3,
            tracker: TrackerConfig::default(),
            frame_bits: 12_000,
            pause_on_outage: false,
            control: None,
            command_timing: CommandTiming::Scheduled,
            pose_timing: PoseTiming::AtReport,
            goodput: true,
            los_gating: false,
            track_speeds: true,
            fallback: FallbackPolicy::Off,
        }
    }
}

impl EngineConfig {
    /// The multi-TX profile: slot-start pose sync to every unit, immediate
    /// commands, line-of-sight gating, no goodput/speed accounting.
    pub fn multi_tx(tracker: TrackerConfig) -> EngineConfig {
        EngineConfig {
            tracker,
            command_timing: CommandTiming::Immediate,
            pose_timing: PoseTiming::SlotStart,
            goodput: false,
            los_gating: true,
            track_speeds: false,
            ..EngineConfig::default()
        }
    }

    /// Validates the configuration ([`SessionBuilder::build`] runs this
    /// before constructing a session).
    pub fn validate(&self) -> Result<(), EngineConfigError> {
        if !(self.slot_s.is_finite() && self.slot_s > 0.0) {
            return Err(EngineConfigError::InvalidSlot);
        }
        if self.goodput && self.frame_bits == 0 {
            return Err(EngineConfigError::ZeroFrameBits);
        }
        let is_prob = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        let t = &self.tracker;
        if !(t.period_min_s.is_finite() && t.period_min_s > 0.0) {
            return Err(EngineConfigError::InvalidTracker(
                "period_min_s must be finite and positive",
            ));
        }
        if !(t.period_max_s.is_finite() && t.period_max_s >= t.period_min_s) {
            return Err(EngineConfigError::InvalidTracker(
                "period_max_s must be finite and >= period_min_s",
            ));
        }
        if !is_prob(t.late_prob) {
            return Err(EngineConfigError::InvalidTracker(
                "late_prob must be a probability in [0, 1]",
            ));
        }
        if t.late_prob > 0.0 && !(t.late_min_s > 0.0 && t.late_max_s >= t.late_min_s) {
            return Err(EngineConfigError::InvalidTracker(
                "late_min_s/late_max_s must bound a positive interval when late_prob > 0",
            ));
        }
        if !is_prob(t.report_loss_prob) {
            return Err(EngineConfigError::InvalidTracker(
                "report_loss_prob must be a probability in [0, 1]",
            ));
        }
        if !(t.control_channel_latency_s.is_finite() && t.control_channel_latency_s >= 0.0) {
            return Err(EngineConfigError::InvalidTracker(
                "control_channel_latency_s must be finite and non-negative",
            ));
        }
        if let Some(c) = &self.control {
            let f = &c.fault;
            for (p, what) in [
                (f.loss_prob, "fault.loss_prob must be a probability"),
                (
                    f.burst_enter_prob,
                    "fault.burst_enter_prob must be a probability",
                ),
                (
                    f.burst_exit_prob,
                    "fault.burst_exit_prob must be a probability",
                ),
                (
                    f.burst_loss_prob,
                    "fault.burst_loss_prob must be a probability",
                ),
                (
                    f.delay_spike_prob,
                    "fault.delay_spike_prob must be a probability",
                ),
                (f.dup_prob, "fault.dup_prob must be a probability"),
                (f.reorder_prob, "fault.reorder_prob must be a probability"),
            ] {
                if !is_prob(p) {
                    return Err(EngineConfigError::InvalidControl(what));
                }
            }
        }
        Ok(())
    }
}

/// Why a session or fleet configuration was rejected by a builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfigError {
    /// The builder was given no TX installation.
    NoUnits,
    /// `slot_s` is not finite and positive.
    InvalidSlot,
    /// Goodput accounting is on but `frame_bits` is zero.
    ZeroFrameBits,
    /// A [`TrackerConfig`] field is out of range.
    InvalidTracker(&'static str),
    /// A control-plane fault probability is out of range.
    InvalidControl(&'static str),
    /// A [`FleetConfig`] field is out of range.
    InvalidFleet(&'static str),
    /// An [`Environment`](crate::channel::Environment) stage parameter is
    /// out of range.
    InvalidEnvironment(&'static str),
}

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineConfigError::NoUnits => write!(f, "session needs at least one TX installation"),
            EngineConfigError::InvalidSlot => write!(f, "slot_s must be finite and positive"),
            EngineConfigError::ZeroFrameBits => {
                write!(
                    f,
                    "frame_bits must be nonzero when goodput accounting is on"
                )
            }
            EngineConfigError::InvalidTracker(what) => write!(f, "tracker config: {what}"),
            EngineConfigError::InvalidControl(what) => write!(f, "control config: {what}"),
            EngineConfigError::InvalidFleet(what) => write!(f, "fleet config: {what}"),
            EngineConfigError::InvalidEnvironment(what) => write!(f, "environment config: {what}"),
        }
    }
}

impl std::error::Error for EngineConfigError {}

/// When a session's first tracking report fires, relative to the pre-start
/// alignment every session runs at t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstReport {
    /// The pre-start alignment consumed the t = 0 report; the next arrives
    /// a full tracker period later (the single-TX methodology; the default
    /// for one-unit sessions).
    AfterPeriod,
    /// A report also fires at t = 0 (the multi-TX methodology; the default
    /// for multi-unit sessions).
    AtZero,
}

// ---------------------------------------------------------------------------
// Components: control plane, TP policy
// ---------------------------------------------------------------------------

/// How reports travel from the VRH tracker to the TP: either the perfect
/// channel (reports act instantly, losses drawn i.i.d. from the deployment
/// RNG by the session) or the PR 2 ARQ/fault stack ([`ControlLink`]).
#[derive(Debug)]
pub struct ControlPlane {
    /// The faulty/ARQ link; `None` = perfect channel.
    link: Option<ControlLink<(f64, Pose)>>,
}

impl ControlPlane {
    /// Builds the plane from the optional config; `latency_s` is the base
    /// control-channel latency carried by every frame.
    pub fn new(cfg: Option<ControlPlaneConfig>, latency_s: f64) -> ControlPlane {
        ControlPlane {
            link: cfg.map(|cp| ControlLink::new(cp.fault, cp.arq, latency_s)),
        }
    }

    /// Whether the faulty/ARQ stack is active (vs the perfect channel).
    pub fn is_faulty(&self) -> bool {
        self.link.is_some()
    }

    /// Channel counters, when the faulty stack is active.
    pub fn stats(&self) -> Option<ControlStats> {
        self.link.as_ref().map(|l| l.stats())
    }
}

/// What the TP does with reports: the scheduled-command queue, the
/// dead-reckoning state (recent deliveries + velocity anchor), and the
/// re-acquisition spiral. One instance per session.
#[derive(Debug, Default)]
pub struct TpPolicy {
    /// Commands awaiting their apply time `(when, voltages)`.
    pending: VecDeque<(f64, [f64; 4])>,
    /// Recent delivered reports `(t_sample, pose)`, newest at the back,
    /// feeding the dead-reckoning velocity estimate. The velocity anchor is
    /// the newest entry at least `min_baseline_s` older than the latest, so
    /// tracker noise isn't amplified by differencing two near-coincident
    /// samples.
    deliveries: VecDeque<(f64, Pose)>,
    /// Arrival time of the last delivered report (staleness clock).
    last_delivery_arrival: Option<f64>,
    last_dr_t: f64,
    /// Re-acquisition search state.
    spiral: Option<ReacqSpiral>,
    spiral_exhausted: bool,
    signal_lost_since: Option<f64>,
}

/// What [`TpPolicy::reacq`] did this slot (telemetry only — the spiral's
/// effect on the deployment happens inside the call).
#[derive(Debug, Clone, Copy, Default)]
struct ReacqActivity {
    /// A spiral was created this slot.
    started: bool,
    /// A voltage probe was taken this slot.
    probed: bool,
    /// The spiral ended this slot: `Some(true)` recovered solid signal,
    /// `Some(false)` exhausted the probe budget.
    ended: Option<bool>,
}

impl TpPolicy {
    /// Applies every command whose time has come, in order (at high
    /// tracking rates a command can still be in the DAC pipeline when the
    /// next report arrives). Returns how many were applied.
    fn apply_due(&mut self, t_slot: f64, dep: &mut Deployment) -> u64 {
        let mut n = 0;
        while let Some(&(when, v)) = self.pending.front() {
            if when > t_slot {
                break;
            }
            dep.set_voltages(v[0], v[1], v[2], v[3]);
            self.pending.pop_front();
            n += 1;
        }
        n
    }

    /// Records a control-plane delivery into the dead-reckoning window.
    fn on_delivery(&mut self, t_arr: f64, t_sample: f64, pose: Pose) {
        self.deliveries.push_back((t_sample, pose));
        if self.deliveries.len() > 64 {
            self.deliveries.pop_front();
        }
        self.last_delivery_arrival = Some(t_arr);
    }

    /// Issues a dead-reckoned command when reports are stale but the
    /// velocity estimate is still fresh. Returns the issued command and its
    /// apply time, for telemetry.
    fn dead_reckon(
        &mut self,
        t_slot: f64,
        dr: crate::control::DeadReckoningConfig,
        unit: &mut TxInstallation,
    ) -> Option<(f64, TpCommand)> {
        if let (Some(&(t1, p1)), Some(arr)) = (self.deliveries.back(), self.last_delivery_arrival) {
            // Velocity anchor: the newest delivery at least `min_baseline_s`
            // older than the latest (falling back to the oldest we kept).
            let (t0, p0) = self
                .deliveries
                .iter()
                .rev()
                .find(|(t, _)| t1 - t >= dr.min_baseline_s)
                .or_else(|| self.deliveries.front())
                .copied()
                .unwrap();
            // Reports stale but the velocity estimate still fresh: steer on
            // the constant-velocity prediction.
            if t0 < t1
                && t_slot - arr > dr.stale_after_s
                && t_slot - t1 <= dr.max_horizon_s
                && t_slot - self.last_dr_t >= dr.interval_s
            {
                let pred = extrapolate_pose(&p0, t0, &p1, t1, t_slot);
                let cmd = unit.ctl.on_extrapolated(&pred);
                let settle = unit.dep.settle_estimate(
                    cmd.voltages[0],
                    cmd.voltages[1],
                    cmd.voltages[2],
                    cmd.voltages[3],
                );
                let apply_at = t_slot + cmd.latency_s + settle;
                self.pending.push_back((apply_at, cmd.voltages));
                self.last_dr_t = t_slot;
                return Some((apply_at, cmd));
            }
        }
        None
    }

    /// The re-acquisition spiral: probes voltages around the last aim when
    /// the beam is lost and tracking can't help. May re-evaluate `power` and
    /// `signal` in place. Returns what happened, for telemetry.
    #[allow(clippy::too_many_arguments)]
    fn reacq(
        &mut self,
        t_slot: f64,
        rq: crate::control::ReacqConfig,
        period_max_s: f64,
        flap_forced: bool,
        unit: &mut TxInstallation,
        channel: &ChannelModel,
        env_att_db: f64,
        power: &mut f64,
        signal: &mut bool,
    ) -> ReacqActivity {
        let mut act = ReacqActivity::default();
        // The search only rests on *solid* signal: a point at the bare
        // sensitivity edge flickers under drift, resetting the SFP hold
        // timer forever.
        let solid = *power >= channel.sensitivity_dbm + rq.success_margin_db;
        if (*signal && solid) || flap_forced {
            // Solid signal (or the outage is the SFP's, not the beam's): no
            // search.
            self.signal_lost_since = None;
            if self.spiral.take().is_some() {
                act.ended = Some(true);
            }
            self.spiral_exhausted = false;
        } else {
            let since = *self.signal_lost_since.get_or_insert(t_slot);
            // Only search when tracking can't help: reports stale for 2+
            // periods (else the TP already points better than a blind probe
            // would).
            let reports_stale = self
                .last_delivery_arrival
                .map_or(true, |arr| t_slot - arr > 2.0 * period_max_s);
            if !self.spiral_exhausted && reports_stale && t_slot - since >= rq.trigger_after_s {
                let v = unit.dep.voltages();
                act.started = self.spiral.is_none();
                let sp = self.spiral.get_or_insert_with(|| {
                    ReacqSpiral::new([v.0, v.1, v.2, v.3], rq.step_v, rq.max_steps)
                });
                match sp.next_voltages() {
                    Some(nv) => {
                        act.probed = true;
                        unit.dep.set_voltages(nv[0], nv[1], nv[2], nv[3]);
                        unit.ctl.note_reacq_step();
                        // Probe through the same environment the slot saw:
                        // fog doesn't clear because the mirror moved.
                        *power = unit.dep.received_power_dbm() - env_att_db;
                        *signal = *power >= channel.sensitivity_dbm;
                        if *power >= channel.sensitivity_dbm + rq.success_margin_db {
                            self.signal_lost_since = None;
                            self.spiral = None;
                            act.ended = Some(true);
                        }
                    }
                    None => {
                        // Budget exhausted: restore the center and wait for
                        // tracking after all.
                        let c = sp.center();
                        unit.dep.set_voltages(c[0], c[1], c[2], c[3]);
                        self.spiral = None;
                        self.spiral_exhausted = true;
                        act.ended = Some(false);
                    }
                }
            }
        }
        act
    }

    /// Drops in-flight state that belonged to the previous active unit —
    /// its command queue, delivery window, staleness clock and search state
    /// are meaningless on the new unit's mapping. The policy restarts from
    /// scratch on the new unit; in particular an exhausted spiral budget on
    /// the old unit must not forbid searching on the new one.
    fn clear_inflight(&mut self) {
        self.pending.clear();
        self.deliveries.clear();
        self.last_delivery_arrival = None;
        self.last_dr_t = 0.0;
        self.spiral = None;
        self.spiral_exhausted = false;
        self.signal_lost_since = None;
    }
}

// ---------------------------------------------------------------------------
// Components: TX selection
// ---------------------------------------------------------------------------

/// Per-slot context handed to a [`TxSelector`].
#[derive(Debug)]
pub struct SelectCtx<'a> {
    /// Currently active unit index.
    pub active: usize,
    /// Whether the active unit has optical signal this slot.
    pub signal: bool,
    /// Slot length (seconds).
    pub slot_s: f64,
    /// RX aperture position (world, metres).
    pub rx_pos: Vec3,
    /// TX aperture positions (world, metres), one per unit.
    pub tx_positions: &'a [Vec3],
    /// The occluders currently in the room.
    pub occluders: &'a [Occluder],
}

impl SelectCtx<'_> {
    /// Whether unit `i` has line of sight to the RX.
    pub fn los(&self, i: usize) -> bool {
        let tx_pos = self.tx_positions[i];
        !self.occluders.iter().any(|o| o.blocks(tx_pos, self.rx_pos))
    }
}

/// Which ceiling unit serves the headset. Called once per slot after
/// channel evaluation; returning `Some(i)` switches the session to unit `i`
/// (the session then fires one immediate TP shot on it).
pub trait TxSelector {
    /// Decides this slot's handover, if any.
    fn on_slot(&mut self, ctx: &SelectCtx<'_>) -> Option<usize>;
}

/// The single-TX selector: unit 0, forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleTx;

impl TxSelector for SingleTx {
    fn on_slot(&mut self, _ctx: &SelectCtx<'_>) -> Option<usize> {
        None
    }
}

/// The multi-TX simulator's policy: after the active unit has been dark for
/// a debounce interval, switch to the nearest unoccluded sibling.
#[derive(Debug, Clone)]
pub struct DarkDebounce {
    /// Dark time on the active unit before a handover is attempted (s).
    pub debounce_s: f64,
    dark_s: f64,
}

impl DarkDebounce {
    /// Creates the selector with the given debounce.
    pub fn new(debounce_s: f64) -> DarkDebounce {
        DarkDebounce {
            debounce_s,
            dark_s: 0.0,
        }
    }
}

impl TxSelector for DarkDebounce {
    fn on_slot(&mut self, ctx: &SelectCtx<'_>) -> Option<usize> {
        if ctx.signal {
            self.dark_s = 0.0;
        } else {
            self.dark_s += ctx.slot_s;
        }
        if self.dark_s < self.debounce_s || ctx.tx_positions.len() <= 1 {
            return None;
        }
        let best = (0..ctx.tx_positions.len())
            .filter(|&i| i != ctx.active && ctx.los(i))
            .min_by(|&a, &b| {
                let da = ctx.tx_positions[a].distance(ctx.rx_pos);
                let db = ctx.tx_positions[b].distance(ctx.rx_pos);
                // total_cmp sorts NaN above +inf, so a unit whose distance
                // degenerates to NaN is never preferred — and the old
                // partial_cmp().unwrap() panic is gone.
                da.total_cmp(&db)
            });
        if best.is_some() {
            self.dark_s = 0.0;
        }
        best
    }
}

/// Margin-based selection for full-physics sessions: after the dark-time
/// debounce, switch to the unoccluded sibling with the best *aligned link
/// margin* (not merely the nearest).
#[derive(Debug, Clone)]
pub struct BestMargin {
    /// Dark time on the active unit before a handover is attempted (s).
    pub debounce_s: f64,
    /// Link design shared by the units (margins are evaluated on it).
    pub design: LinkDesign,
    dark_s: f64,
}

impl BestMargin {
    /// Creates the selector.
    pub fn new(design: LinkDesign, debounce_s: f64) -> BestMargin {
        BestMargin {
            debounce_s,
            design,
            dark_s: 0.0,
        }
    }
}

impl TxSelector for BestMargin {
    fn on_slot(&mut self, ctx: &SelectCtx<'_>) -> Option<usize> {
        if ctx.signal {
            self.dark_s = 0.0;
        } else {
            self.dark_s += ctx.slot_s;
        }
        if self.dark_s < self.debounce_s || ctx.tx_positions.len() <= 1 {
            return None;
        }
        let margin = |i: usize| aligned_margin_db(&self.design, ctx.tx_positions[i], ctx.rx_pos);
        let best = (0..ctx.tx_positions.len())
            .filter(|&i| i != ctx.active && ctx.los(i) && margin(i) >= 0.0)
            .max_by(|&a, &b| margin(a).total_cmp(&margin(b)));
        if best.is_some() {
            self.dark_s = 0.0;
        }
        best
    }
}

/// Aligned link margin (dB) a unit at `tx_pos` would give at `rx_pos`: the
/// design's margin re-evaluated at that range. Negative when the link
/// cannot close; `-inf` when the geometry degenerates.
pub fn aligned_margin_db(design: &LinkDesign, tx_pos: Vec3, rx_pos: Vec3) -> f64 {
    let dir = (rx_pos - tx_pos).try_normalized(1e-9);
    let Some(dir) = dir else {
        return f64::NEG_INFINITY;
    };
    let chief = Ray::new(tx_pos, dir);
    let rx = ReceiverGeometry::new(rx_pos, -dir);
    design.received_power_dbm(chief, &rx) - design.sfp.rx_sensitivity_dbm
}

/// The geometric margin-based handover state machine behind
/// [`crate::handover::HandoverSystem`] (and usable standalone): pays a
/// switch delay on every handover, and — when `hysteresis_db` is set — also
/// upgrades away from a *working* unit once a sibling's margin beats it by
/// more than the hysteresis. A tie never triggers a switch, so two equal
/// units cannot flip-flop.
#[derive(Debug, Clone, Copy)]
pub struct MarginSelector {
    /// Time a switch takes (re-steer + re-lock), seconds.
    pub switch_time_s: f64,
    /// Greedy-upgrade hysteresis (dB): `None` switches only when the active
    /// unit is unusable (the legacy behavior); `Some(h)` also switches when
    /// a sibling's margin exceeds the active unit's by more than `h`.
    pub hysteresis_db: Option<f64>,
    switch_remaining_s: f64,
}

impl MarginSelector {
    /// Creates the state machine (no greedy upgrades).
    pub fn new(switch_time_s: f64) -> MarginSelector {
        MarginSelector {
            switch_time_s,
            hysteresis_db: None,
            switch_remaining_s: 0.0,
        }
    }

    /// Whether a switch is currently in progress.
    pub fn switching(&self) -> bool {
        self.switch_remaining_s > 0.0
    }

    /// Advances one step. `margin(i)` must return unit `i`'s link margin in
    /// dB, `NEG_INFINITY` when it is occluded or otherwise unusable; a unit
    /// is selectable iff its margin is ≥ 0. Returns whether the link
    /// delivers data this step and the (possibly new) active unit.
    pub fn step(
        &mut self,
        active: usize,
        n: usize,
        margin: impl Fn(usize) -> f64,
        dt: f64,
    ) -> (bool, usize) {
        if self.switch_remaining_s > 0.0 {
            self.switch_remaining_s -= dt;
            return (false, active);
        }
        let m_active = margin(active);
        if m_active >= 0.0 {
            if let Some(h) = self.hysteresis_db {
                // Greedy upgrade: only on a *strict* improvement beyond the
                // hysteresis — equal margins never switch.
                // The `>= 0.0` filter already excludes NaN margins (NaN
                // compares false); total_cmp makes the max itself NaN-proof.
                let best = (0..n)
                    .filter(|&i| i != active && margin(i) >= 0.0)
                    .max_by(|&a, &b| margin(a).total_cmp(&margin(b)));
                if let Some(b) = best {
                    if margin(b) > m_active + h {
                        self.switch_remaining_s = self.switch_time_s;
                        return (false, b);
                    }
                }
            }
            return (true, active);
        }
        // Pick the usable unit with the highest margin.
        let best = (0..n)
            .filter(|&i| margin(i) >= 0.0)
            .max_by(|&a, &b| margin(a).total_cmp(&margin(b)));
        match best {
            Some(i) => {
                self.switch_remaining_s = self.switch_time_s;
                (false, i)
            }
            None => (false, active), // everything blocked or out of reach
        }
    }
}

// ---------------------------------------------------------------------------
// Components: hybrid FSO/RF fallback
// ---------------------------------------------------------------------------

/// Whether a session may degrade to the RF side channel during FSO outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackPolicy {
    /// Pure FSO (the paper's system): an outage delivers zero rate. The
    /// default — and the determinism contract: with `Off` the engine skips
    /// the fallback path entirely and the slot stream stays bit-identical
    /// to the pre-fallback engine (the `engine_digest` goldens pin this).
    #[default]
    Off,
    /// Fail over to the low-rate RF channel ([`RfChannel`]) while the FSO
    /// link is down; fail back once FSO has held for the failback hold —
    /// flicker-safe hysteresis mirroring [`SfpLinkState`].
    RfOnOutage,
}

/// The hybrid-link failover state machine: decides, per slot, whether
/// traffic rides the RF side channel.
///
/// Deterministic and RNG-free, like [`SfpLinkState`] (whose flicker-safe
/// hysteresis it mirrors on the failback edge):
///
/// - *Failover*: FSO must be down continuously for `failover_delay_s`
///   before traffic moves to RF (a one-slot dark blip doesn't thrash).
/// - *Failback*: FSO must be up continuously for `failback_hold_s` before
///   traffic moves back; any flicker resets the hold and traffic stays on
///   RF — the same "no residual credit" rule as the SFP re-lock timer.
#[derive(Debug, Clone, Copy)]
pub struct LinkPolicy {
    /// Continuous FSO-down time before failing over to RF (seconds).
    pub failover_delay_s: f64,
    /// Continuous FSO-up time before failing back to FSO (seconds).
    pub failback_hold_s: f64,
    rf_active: bool,
    down_held_s: f64,
    up_held_s: f64,
    cur_rf_s: f64,
    last_rf_s: f64,
    n_failovers: u64,
    n_failbacks: u64,
}

impl Default for LinkPolicy {
    /// 5 ms failover debounce, 250 ms failback hold.
    fn default() -> LinkPolicy {
        LinkPolicy::new(5e-3, 0.25)
    }
}

impl LinkPolicy {
    /// Creates the machine on FSO (RF inactive).
    pub fn new(failover_delay_s: f64, failback_hold_s: f64) -> LinkPolicy {
        LinkPolicy {
            failover_delay_s,
            failback_hold_s,
            rf_active: false,
            down_held_s: 0.0,
            up_held_s: 0.0,
            cur_rf_s: 0.0,
            last_rf_s: 0.0,
            n_failovers: 0,
            n_failbacks: 0,
        }
    }

    /// Advances by `dt` seconds given the FSO link state after this slot's
    /// SFP step. Returns whether RF carries traffic this slot (the failover
    /// slot itself already counts as an RF slot).
    ///
    /// The 1 ns slack on both thresholds matches [`SfpLinkState::step`]:
    /// float accumulation over thousands of sub-millisecond slots must not
    /// land a transition a full slot late.
    #[inline]
    pub fn step(&mut self, fso_up: bool, dt: f64) -> bool {
        if fso_up {
            self.down_held_s = 0.0;
            if self.rf_active {
                self.up_held_s += dt;
                if self.up_held_s >= self.failback_hold_s - 1e-9 {
                    self.rf_active = false;
                    self.n_failbacks += 1;
                    self.last_rf_s = self.cur_rf_s;
                    self.cur_rf_s = 0.0;
                    self.up_held_s = 0.0;
                }
            }
        } else {
            self.up_held_s = 0.0;
            if !self.rf_active {
                self.down_held_s += dt;
                if self.down_held_s >= self.failover_delay_s - 1e-9 {
                    self.rf_active = true;
                    self.n_failovers += 1;
                    self.down_held_s = 0.0;
                }
            }
        }
        if self.rf_active {
            self.cur_rf_s += dt;
        }
        self.rf_active
    }

    /// Whether RF currently carries traffic.
    #[inline]
    pub fn is_rf_active(&self) -> bool {
        self.rf_active
    }

    /// Failovers (FSO → RF transitions) so far.
    pub fn n_failovers(&self) -> u64 {
        self.n_failovers
    }

    /// Failbacks (RF → FSO transitions) so far.
    pub fn n_failbacks(&self) -> u64 {
        self.n_failbacks
    }

    /// Duration of the most recently *ended* RF episode (seconds); the
    /// current episode's accumulated time while one is in progress.
    pub fn last_rf_episode_s(&self) -> f64 {
        if self.rf_active {
            self.cur_rf_s
        } else {
            self.last_rf_s
        }
    }
}

/// RF-fallback counters, with [`ControlStats`]-style saturating deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RfStats {
    /// FSO → RF failovers.
    pub failovers: u64,
    /// RF → FSO failbacks.
    pub failbacks: u64,
    /// Slots during which RF carried traffic.
    pub rf_slots: u64,
}

impl RfStats {
    /// Counters accumulated since `earlier` — field-wise `saturating_sub`,
    /// consistent with [`ControlStats::since`]: a stale or swapped snapshot
    /// clamps to zero instead of wrapping.
    pub fn since(&self, earlier: &RfStats) -> RfStats {
        RfStats {
            failovers: self.failovers.saturating_sub(earlier.failovers),
            failbacks: self.failbacks.saturating_sub(earlier.failbacks),
            rf_slots: self.rf_slots.saturating_sub(earlier.rf_slots),
        }
    }
}

/// A session's RF fallback attachment: the failover machine plus the RF
/// channel it degrades to.
#[derive(Debug, Clone, Copy, Default)]
struct RfFallback {
    policy: LinkPolicy,
    channel: RfChannel,
}

// ---------------------------------------------------------------------------
// The full-physics session
// ---------------------------------------------------------------------------

/// One ceiling unit: its world (with its TX) plus its trained controller.
#[derive(Debug, Clone)]
pub struct TxInstallation {
    /// The unit's deployment (shares the headset world with its siblings).
    pub dep: Deployment,
    /// The unit's trained TP controller.
    pub ctl: TpController,
}

/// Per-session fault-handling counters (ARQ retries, dead reckoning,
/// re-acquisition, outage durations).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Control-channel counters (`None` when the legacy path ran).
    pub control: Option<ControlStats>,
    /// Dead-reckoned commands issued from extrapolated poses.
    pub n_extrapolated: u64,
    /// Re-acquisition spiral probes taken.
    pub n_reacq_steps: u64,
    /// Link-down episodes entered.
    pub n_outages: u64,
    /// Total link-down time (seconds).
    pub outage_s: f64,
    /// Longest single link-down episode (seconds).
    pub longest_outage_s: f64,
    /// RF-fallback counters (all zero with [`FallbackPolicy::Off`]).
    pub rf: RfStats,
    /// Data delivered over the RF fallback (gigabits: Σ rate · slot).
    pub rf_delivered_gb: f64,
}

/// Per-slot record of a [`LinkSession`] — the union of every wrapper's
/// record fields (wrappers project it onto their public record types).
///
/// Layout audit: with the default (compiler-chosen) repr the three `bool`s
/// pack into the trailing word next to `active`, giving 56 bytes — five
/// doubles, one `usize`, and one flag word. A run's record vector is the
/// engine's dominant allocation, so the size is pinned by a compile-time
/// assert below; widening this struct is a deliberate decision, not drift.
#[derive(Debug, Clone, Copy)]
pub struct EngineSlot {
    /// Slot end time (seconds).
    pub t: f64,
    /// Index of the active unit (after any handover this slot).
    pub active: usize,
    /// Whether the active unit had line of sight this slot (always true
    /// without LOS gating).
    pub los: bool,
    /// Received optical power on the active unit (dBm).
    pub power_dbm: f64,
    /// Whether the link delivers data this slot: the SFP is up, or — with
    /// [`FallbackPolicy::RfOnOutage`] — the RF fallback carries traffic.
    /// With the fallback off this is exactly "the SFP is up".
    pub link_up: bool,
    /// Whether the RF fallback carried this slot's traffic (always false
    /// with [`FallbackPolicy::Off`]).
    pub rf_active: bool,
    /// Goodput delivered this slot (Gbps; 0 when not accounted). RF-carried
    /// slots report the RF ladder rate.
    pub goodput_gbps: f64,
    /// True linear speed over the slot (m/s; 0 when not tracked).
    pub lin_speed: f64,
    /// True angular speed over the slot (rad/s; 0 when not tracked).
    pub ang_speed: f64,
}

// 5 × f64 + usize + 3 packed bools, padded to 8-byte alignment.
const _: () = assert!(std::mem::size_of::<EngineSlot>() == 56);
const _: () = assert!(std::mem::align_of::<EngineSlot>() == 8);

/// The full-physics slot session: motion × tracking × TP × optics × data
/// plane against one or more TX installations. Every behavioral axis —
/// command timing, pose timing, control plane, LOS gating, TX selection —
/// is a configuration, so the single-TX simulator, the multi-TX handover
/// simulator and the fleet workloads are all this one type.
#[derive(Debug)]
pub struct LinkSession<M: Motion, S: TxSelector> {
    units: Vec<TxInstallation>,
    motion: M,
    occluders: Vec<Occluder>,
    selector: S,
    cfg: EngineConfig,
    channel: ChannelModel,
    /// Hot-path frame-success evaluator (bit-identical to `channel` in the
    /// default build; interpolated under the `fast-channel` feature).
    fsp: crate::channel::FrameSuccessCache,
    control: ControlPlane,
    tp: TpPolicy,
    sfp: SfpLinkState,
    active: usize,
    next_report_t: f64,
    t: f64,
    /// Motion-clock time (lags `t` when pause_on_outage freezes motion).
    motion_t: f64,
    /// Accumulated tracker random-walk drift (applied to report positions
    /// when `tracker.drift_sigma_per_sqrt_s` is set).
    drift: Vec3,
    last_report_t: f64,
    prev_pose: Pose,
    /// Cached TX aperture positions (ceiling units do not move).
    tx_positions: Vec<Vec3>,
    n_handovers: u64,
    /// Outage accounting.
    n_outages: u64,
    outage_s: f64,
    cur_outage_s: f64,
    longest_outage_s: f64,
    /// RF fallback attachment (`None` iff [`FallbackPolicy::Off`], which
    /// keeps the data plane on the pre-fallback fast path).
    rf: Option<RfFallback>,
    /// Slots carried by the RF fallback.
    rf_slots: u64,
    /// Gigabits delivered over the RF fallback (Σ rate · slot).
    rf_delivered_gb: f64,
    /// Composable environment attachment (`None` = clean air, which keeps
    /// the power path bit-identical to the pre-environment engine).
    env: Option<crate::channel::Environment>,
    /// Telemetry attachment (observers only; never feeds the simulation).
    tele: Telemetry,
    /// Control-stats snapshot at the end of the previous slot, for
    /// synthesizing per-slot retransmit/drop deltas.
    prev_ctrl: ControlStats,
    /// Monotonic virtual clock (simulation time) for scoped timers.
    clock: VirtualClock,
    /// Timer opened at the last SFP down-transition.
    outage_timer: Option<ScopedTimer>,
    /// Global slot index across `run` calls (telemetry event numbering).
    slot_idx: u64,
}

impl<M: Motion> LinkSession<M, SingleTx> {
    /// Starts building a session over `motion` (see [`SessionBuilder`]).
    /// The builder starts with the single-TX profile ([`SingleTx`] selector,
    /// `EngineConfig::default()`); add units, a selector, a config and
    /// telemetry, then [`SessionBuilder::build`].
    pub fn builder(motion: M) -> SessionBuilder<M, SingleTx> {
        SessionBuilder {
            units: Vec::new(),
            motion,
            occluders: Vec::new(),
            selector: SingleTx,
            cfg: EngineConfig::default(),
            telemetry: Telemetry::off(),
            first_report: None,
            environment: None,
        }
    }
}

impl<M: Motion, S: TxSelector> LinkSession<M, S> {
    /// The one true constructor behind the builder. The RNG draw order
    /// here is part of the determinism contract:
    /// one `noisy_report_of` on unit 0's deployment RNG for the pre-start
    /// alignment, then (for [`FirstReport::AfterPeriod`] only) one
    /// `draw_period` on the same RNG.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        mut units: Vec<TxInstallation>,
        mut motion: M,
        occluders: Vec<Occluder>,
        selector: S,
        cfg: EngineConfig,
        telemetry: Telemetry,
        first_report: FirstReport,
        env: Option<crate::channel::Environment>,
    ) -> Self {
        assert!(!units.is_empty());
        let relink = units[0].dep.design.sfp.relink_time_s;
        let pose0 = motion.pose_at(0.0);
        for u in units.iter_mut() {
            u.dep.set_headset_pose(pose0);
        }
        // Align unit 0 against the initial pose, before time zero.
        let clean = units[0].dep.headset.true_reported_pose();
        let rep = noisy_report_of(clean, &cfg.tracker, units[0].dep.rng());
        let cmd = units[0].ctl.on_report(&rep);
        units[0].dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        let channel = FsoChannel::new(
            units[0].dep.design.sfp.rx_sensitivity_dbm,
            units[0].dep.design.sfp.rx_overload_dbm,
        );
        let next_report_t = match first_report {
            FirstReport::AfterPeriod => cfg.tracker.draw_period(units[0].dep.rng()),
            FirstReport::AtZero => 0.0,
        };
        let control = ControlPlane::new(cfg.control, cfg.tracker.control_channel_latency_s);
        let tx_positions = units.iter().map(|u| u.dep.tx_world_params().q2).collect();
        let fsp = crate::channel::FrameSuccessCache::new(channel, cfg.frame_bits);
        LinkSession {
            units,
            motion,
            occluders,
            selector,
            cfg,
            channel,
            fsp,
            control,
            tp: TpPolicy::default(),
            sfp: SfpLinkState::new_up(relink),
            active: 0,
            next_report_t,
            t: 0.0,
            motion_t: 0.0,
            drift: Vec3::ZERO,
            last_report_t: 0.0,
            prev_pose: Pose::IDENTITY,
            tx_positions,
            n_handovers: 0,
            n_outages: 0,
            outage_s: 0.0,
            cur_outage_s: 0.0,
            longest_outage_s: 0.0,
            rf: match cfg.fallback {
                FallbackPolicy::Off => None,
                FallbackPolicy::RfOnOutage => Some(RfFallback::default()),
            },
            rf_slots: 0,
            rf_delivered_gb: 0.0,
            env,
            tele: telemetry,
            prev_ctrl: ControlStats::default(),
            clock: VirtualClock::default(),
            outage_timer: None,
            slot_idx: 0,
        }
    }

    /// The installed units.
    pub fn units(&self) -> &[TxInstallation] {
        &self.units
    }

    /// Mutable access to the installed units.
    pub fn units_mut(&mut self) -> &mut [TxInstallation] {
        &mut self.units
    }

    /// The motion source.
    pub fn motion_mut(&mut self) -> &mut M {
        &mut self.motion
    }

    /// The occluders.
    pub fn occluders_mut(&mut self) -> &mut [Occluder] {
        &mut self.occluders
    }

    /// The TX selector.
    pub fn selector_mut(&mut self) -> &mut S {
        &mut self.selector
    }

    /// The session configuration.
    pub fn cfg(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Mutable access to the session configuration. Note the control-plane
    /// stack is built at construction; changing `cfg.control` afterwards
    /// only affects the DR/re-acquisition/flap policies, not the channel.
    pub fn cfg_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    /// Index of the currently active unit.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Handovers performed so far.
    pub fn n_handovers(&self) -> u64 {
        self.n_handovers
    }

    /// The session's aggregated telemetry, when counter aggregation was
    /// enabled at construction ([`Telemetry::counters`]).
    pub fn telemetry(&self) -> Option<&SessionTelemetry> {
        self.tele.counters_ref()
    }

    /// Mutable access to the telemetry attachment (e.g. to emit
    /// fleet-level events, flush, or recover an in-memory sink).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.tele
    }

    fn unit_los(&self, i: usize, rx_pos: Vec3) -> bool {
        let tx_pos = self.tx_positions[i];
        !self.occluders.iter().any(|o| o.blocks(tx_pos, rx_pos))
    }

    /// Runs for `duration_s`, returning one record per slot. Flushes the
    /// telemetry sink (if any) at the end of the run.
    pub fn run(&mut self, duration_s: f64) -> Vec<EngineSlot> {
        let mut recs = Vec::new();
        self.run_each(duration_s, |r| recs.push(r));
        recs
    }

    /// Streaming form of [`LinkSession::run`]: hands each [`EngineSlot`] to
    /// `f` in slot order without materializing the per-slot vector — the
    /// same slot loop, so the record stream is identical. Flushes the
    /// telemetry sink (if any) at the end.
    pub fn run_each(&mut self, duration_s: f64, f: impl FnMut(EngineSlot)) {
        let n_slots = (duration_s / self.cfg.slot_s).round() as usize;
        if self.cfg.track_speeds {
            self.prev_pose = self.motion.pose_at(self.motion_t);
        }
        fold_slots(self, n_slots, f);
        self.tele.flush();
    }

    /// Prologue of [`LinkSession::run_each`] for external slot drivers
    /// (the scheduled fleet steps sessions in lockstep through
    /// [`SlotSession::step_slot`]): primes the speed-tracking pose.
    pub(crate) fn begin_external_run(&mut self) {
        if self.cfg.track_speeds {
            self.prev_pose = self.motion.pose_at(self.motion_t);
        }
    }

    /// Epilogue of [`LinkSession::run_each`] for external slot drivers:
    /// flushes the telemetry sink.
    pub(crate) fn end_external_run(&mut self) {
        self.tele.flush();
    }

    /// Fault-handling counters accumulated across all [`LinkSession::run`]
    /// calls: control-channel stats, dead-reckoning and re-acquisition
    /// activity, and outage durations.
    pub fn session_stats(&self) -> SessionStats {
        SessionStats {
            control: self.control.stats(),
            n_extrapolated: self
                .units
                .iter()
                .map(|u| u.ctl.metrics.n_extrapolated)
                .sum(),
            n_reacq_steps: self.units.iter().map(|u| u.ctl.metrics.n_reacq_steps).sum(),
            n_outages: self.n_outages,
            outage_s: self.outage_s,
            longest_outage_s: self.longest_outage_s,
            rf: RfStats {
                failovers: self.rf.as_ref().map_or(0, |r| r.policy.n_failovers()),
                failbacks: self.rf.as_ref().map_or(0, |r| r.policy.n_failbacks()),
                rf_slots: self.rf_slots,
            },
            rf_delivered_gb: self.rf_delivered_gb,
        }
    }

    /// The RF failover machine, when the fallback is enabled.
    pub fn rf_policy(&self) -> Option<&LinkPolicy> {
        self.rf.as_ref().map(|r| &r.policy)
    }

    /// TP metrics merged across all units.
    pub fn tp_metrics(&self) -> TpMetrics {
        let mut m = TpMetrics::default();
        for u in &self.units {
            let um = &u.ctl.metrics;
            m.n_reports += um.n_reports;
            m.n_failures += um.n_failures;
            m.sum_iters += um.sum_iters;
            m.max_iters = m.max_iters.max(um.max_iters);
            m.sum_latency_s += um.sum_latency_s;
            m.max_latency_s = m.max_latency_s.max(um.max_latency_s);
            m.n_extrapolated += um.n_extrapolated;
            m.n_reacq_steps += um.n_reacq_steps;
        }
        m
    }
}

impl<M: Motion, S: TxSelector> SlotSession for LinkSession<M, S> {
    type Record = EngineSlot;

    fn step_slot(&mut self, _k: usize) -> EngineSlot {
        let slot_s = self.cfg.slot_s;
        let t_slot = self.t + slot_s;
        let moving = !self.cfg.pause_on_outage || self.sfp.is_up();
        let motion_t_slot = if moving {
            self.motion_t + slot_s
        } else {
            self.motion_t
        };
        // Telemetry is pure observation: all emission below is gated on this
        // one flag, and every event fires only after the slot's random draws
        // for that stage have happened, so sinks cannot perturb the streams.
        let tele_on = self.tele.is_active();
        self.clock.advance(slot_s);
        let k_ev = self.slot_idx;
        self.slot_idx += 1;
        if tele_on {
            self.tele
                .emit(&TelemetryEvent::SlotStart { k: k_ev, t: t_slot });
        }

        // 0. Environment: occluders wander.
        for o in self.occluders.iter_mut() {
            o.step(slot_s);
        }

        // 0b. Slot-start pose sync (multi-TX timing model).
        let need_rx = self.cfg.los_gating || self.tx_positions.len() > 1;
        let mut rx_pos = Vec3::ZERO;
        let mut slot_pose: Option<Pose> = None;
        if self.cfg.pose_timing == PoseTiming::SlotStart {
            let pose = self.motion.pose_at(motion_t_slot);
            for u in self.units.iter_mut() {
                u.dep.set_headset_pose(pose);
            }
            if need_rx {
                rx_pos = self.units[self.active].dep.rx_world_params().q2;
            }
            slot_pose = Some(pose);
        }

        // 1. Tracking reports due within this slot.
        while self.next_report_t <= t_slot {
            let rt = self.next_report_t;
            let period = self
                .cfg
                .tracker
                .draw_period(self.units[self.active].dep.rng());
            self.next_report_t = rt + period;
            // Legacy path only: the control channel may lose the report
            // entirely; the TP then simply waits for the next one. With the
            // control plane enabled, losses (and everything else) come from
            // the deterministic fault layer instead.
            if !self.control.is_faulty() {
                let loss_p = self.cfg.tracker.report_loss_prob;
                if loss_p > 0.0 && self.units[self.active].dep.rng().gen_bool(loss_p) {
                    if tele_on {
                        self.tele.emit(&TelemetryEvent::CtrlDropped {
                            t: rt,
                            n: 1,
                            reason: DropReason::ChannelLoss,
                        });
                    }
                    continue;
                }
            }
            if self.cfg.pose_timing == PoseTiming::AtReport {
                // Backdate the sampled pose to the report time.
                let pose = self
                    .motion
                    .pose_at(motion_t_slot.min(self.motion_t.max(motion_t_slot - (t_slot - rt))));
                self.units[self.active].dep.set_headset_pose(pose);
            }
            let ds = self.cfg.tracker.drift_sigma_per_sqrt_s;
            let u = &mut self.units[self.active];
            let mut clean = u.dep.headset.true_reported_pose();
            // Tracker random-walk drift (the §4 re-calibration trigger).
            if ds > 0.0 {
                let dt = (rt - self.last_report_t).max(0.0);
                let step = ds * dt.sqrt();
                let rng = u.dep.rng();
                self.drift += cyclops_geom::vec3::v3(
                    cyclops_vrh::rand_util::gauss(rng) * step,
                    cyclops_vrh::rand_util::gauss(rng) * step,
                    cyclops_vrh::rand_util::gauss(rng) * step,
                );
                clean.trans += self.drift;
            }
            self.last_report_t = rt;
            let reported = noisy_report_of(clean, &self.cfg.tracker, u.dep.rng());
            if let Some(link) = self.control.link.as_mut() {
                // Hand the report to the (faulty) control channel; the TP
                // acts on deliveries, not submissions.
                link.send(rt, (rt, reported));
                if tele_on {
                    self.tele.emit(&TelemetryEvent::CtrlSent { t: rt });
                }
            } else {
                let cmd = u.ctl.on_report(&reported);
                let apply_at = match self.cfg.command_timing {
                    CommandTiming::Scheduled => {
                        // The command is optically effective only after the
                        // control channel, the DAC conversion AND the mirror
                        // settle/slew.
                        let settle = u.dep.settle_estimate(
                            cmd.voltages[0],
                            cmd.voltages[1],
                            cmd.voltages[2],
                            cmd.voltages[3],
                        );
                        let apply_at = rt
                            + self.cfg.tracker.control_channel_latency_s
                            + cmd.latency_s
                            + settle;
                        self.tp.pending.push_back((apply_at, cmd.voltages));
                        apply_at
                    }
                    CommandTiming::Immediate => {
                        u.dep.set_voltages(
                            cmd.voltages[0],
                            cmd.voltages[1],
                            cmd.voltages[2],
                            cmd.voltages[3],
                        );
                        rt
                    }
                };
                if tele_on {
                    self.tele.emit(&TelemetryEvent::TpCommandIssued {
                        t: rt,
                        apply_at,
                        source: CommandSource::Report,
                        latency_s: cmd.latency_s,
                        iters: cmd.iterations as u64,
                        converged: cmd.converged,
                    });
                }
            }
        }

        // 1b. Control-plane deliveries and dead reckoning. Delivered
        // reports already carry the channel latency in their arrival time;
        // only TP compute + settle remain.
        if let Some(link) = self.control.link.as_mut() {
            let delivered = link.poll(t_slot);
            for (t_arr, (t_sample, rep_pose)) in delivered {
                let u = &mut self.units[self.active];
                let cmd = u.ctl.on_report(&rep_pose);
                let settle = u.dep.settle_estimate(
                    cmd.voltages[0],
                    cmd.voltages[1],
                    cmd.voltages[2],
                    cmd.voltages[3],
                );
                let apply_at = t_arr + cmd.latency_s + settle;
                self.tp.pending.push_back((apply_at, cmd.voltages));
                self.tp.on_delivery(t_arr, t_sample, rep_pose);
                if tele_on {
                    self.tele.emit(&TelemetryEvent::CtrlDelivered {
                        t: t_arr,
                        age_s: t_arr - t_sample,
                    });
                    self.tele.emit(&TelemetryEvent::TpCommandIssued {
                        t: t_arr,
                        apply_at,
                        source: CommandSource::Report,
                        latency_s: cmd.latency_s,
                        iters: cmd.iterations as u64,
                        converged: cmd.converged,
                    });
                }
            }
            if let Some(dr) = self.cfg.control.and_then(|c| c.dead_reckoning) {
                let issued = self
                    .tp
                    .dead_reckon(t_slot, dr, &mut self.units[self.active]);
                if tele_on {
                    if let Some((apply_at, cmd)) = issued {
                        self.tele.emit(&TelemetryEvent::TpCommandIssued {
                            t: t_slot,
                            apply_at,
                            source: CommandSource::DeadReckoned,
                            latency_s: cmd.latency_s,
                            iters: cmd.iterations as u64,
                            converged: cmd.converged,
                        });
                    }
                }
            }
        }
        // Synthesize per-slot retransmit/drop events from the cumulative
        // channel counters (the ARQ stack doesn't surface per-frame hooks).
        if tele_on {
            if let Some(cur) = self.control.stats() {
                let d = cur.since(&self.prev_ctrl);
                if d.retransmits > 0 {
                    self.tele.emit(&TelemetryEvent::CtrlRetransmit {
                        t: t_slot,
                        n: d.retransmits,
                    });
                }
                for (n, reason) in [
                    (d.channel_losses, DropReason::ChannelLoss),
                    (d.stale_drops + d.dup_frames, DropReason::Stale),
                    (d.acks_lost, DropReason::AckLost),
                    (d.gave_up, DropReason::GaveUp),
                ] {
                    if n > 0 {
                        self.tele.emit(&TelemetryEvent::CtrlDropped {
                            t: t_slot,
                            n,
                            reason,
                        });
                    }
                }
                self.prev_ctrl = cur;
            }
        }

        // 2. Apply the due commands.
        let n_applied = self.tp.apply_due(t_slot, &mut self.units[self.active].dep);
        if tele_on && n_applied > 0 {
            self.tele.emit(&TelemetryEvent::TpApplied {
                t: t_slot,
                n: n_applied,
            });
        }

        // 3. True pose & optics at slot end.
        let pose = match slot_pose {
            Some(p) => p,
            None => {
                let p = self.motion.pose_at(motion_t_slot);
                for u in self.units.iter_mut() {
                    u.dep.set_headset_pose(p);
                }
                if need_rx {
                    rx_pos = self.units[self.active].dep.rx_world_params().q2;
                }
                p
            }
        };
        let los = if self.cfg.los_gating {
            self.unit_los(self.active, rx_pos)
        } else {
            true
        };
        let mut power = if los {
            self.units[self.active].dep.received_power_dbm()
        } else {
            Deployment::POWER_METER_FLOOR_DBM
        };
        // 3a. Environment: path attenuation ahead of the SFP/channel math.
        // Gated on attachment so clean-air sessions never evaluate a stage
        // (the power stream stays bit-identical to the pre-environment
        // engine), and the stages draw no engine RNG — each is a pure
        // function of (t, path) via per-stream `mix64`.
        let env_att_db = match self.env.as_mut() {
            Some(env) => {
                let rx = if need_rx {
                    rx_pos
                } else {
                    self.units[self.active].dep.rx_world_params().q2
                };
                let path_m = rx.distance(self.tx_positions[self.active]);
                env.attenuation_db(t_slot, path_m)
            }
            None => 0.0,
        };
        if env_att_db > 0.0 {
            power -= env_att_db;
        }
        let (lin, ang) = if self.cfg.track_speeds {
            pose_speeds(&self.prev_pose, &pose, slot_s)
        } else {
            (0.0, 0.0)
        };
        self.prev_pose = pose;

        // 3b. Scheduled SFP flaps force loss-of-signal at the receiver (the
        // beam is fine; the transceiver isn't), and the re-acquisition
        // spiral searches for lost *beams*.
        let flap_forced = self
            .cfg
            .control
            .and_then(|c| c.fault.flap)
            .is_some_and(|f| f.forced_down(t_slot));
        let mut signal = !flap_forced && power >= self.channel.sensitivity_dbm;
        if let Some(rq) = self.cfg.control.and_then(|c| c.reacq) {
            let act = self.tp.reacq(
                t_slot,
                rq,
                self.cfg.tracker.period_max_s,
                flap_forced,
                &mut self.units[self.active],
                &self.channel,
                env_att_db,
                &mut power,
                &mut signal,
            );
            if tele_on {
                if act.started {
                    self.tele.emit(&TelemetryEvent::ReacqStarted { t: t_slot });
                }
                if act.probed {
                    self.tele.emit(&TelemetryEvent::ReacqProbe { t: t_slot });
                }
                if let Some(recovered) = act.ended {
                    self.tele.emit(&TelemetryEvent::ReacqEnded {
                        t: t_slot,
                        recovered,
                    });
                }
            }
        }

        // 3c. TX selection (handover).
        let switch_to = self.selector.on_slot(&SelectCtx {
            active: self.active,
            signal,
            slot_s,
            rx_pos,
            tx_positions: &self.tx_positions,
            occluders: &self.occluders,
        });
        if let Some(best) = switch_to {
            let from = self.active;
            let spiral_abandoned = self.tp.spiral.is_some();
            self.active = best;
            self.n_handovers += 1;
            self.tp.clear_inflight();
            // One immediate TP shot on the new unit.
            let u = &mut self.units[best];
            let clean = u.dep.headset.true_reported_pose();
            let rep = noisy_report_of(clean, &self.cfg.tracker, u.dep.rng());
            let cmd = u.ctl.on_report(&rep);
            u.dep.set_voltages(
                cmd.voltages[0],
                cmd.voltages[1],
                cmd.voltages[2],
                cmd.voltages[3],
            );
            if tele_on {
                if spiral_abandoned {
                    // The old unit's spiral dies with the handover.
                    self.tele.emit(&TelemetryEvent::ReacqEnded {
                        t: t_slot,
                        recovered: false,
                    });
                }
                self.tele.emit(&TelemetryEvent::Handover {
                    t: t_slot,
                    from: from as u32,
                    to: best as u32,
                });
                self.tele.emit(&TelemetryEvent::TpCommandIssued {
                    t: t_slot,
                    apply_at: t_slot,
                    source: CommandSource::HandoverShot,
                    latency_s: cmd.latency_s,
                    iters: cmd.iterations as u64,
                    converged: cmd.converged,
                });
            }
        }

        // 4. Data plane.
        let was_up = self.sfp.is_up();
        let up = self.sfp.step(signal, slot_s);
        if was_up && !up {
            self.n_outages += 1;
            self.cur_outage_s = 0.0;
            self.outage_timer = Some(self.clock.start());
            if tele_on {
                self.tele.emit(&TelemetryEvent::SfpDown { t: t_slot });
            }
        }
        if !up {
            self.outage_s += slot_s;
            self.cur_outage_s += slot_s;
            self.longest_outage_s = self.longest_outage_s.max(self.cur_outage_s);
        }
        if !was_up && up {
            let outage = self
                .outage_timer
                .take()
                .map_or(self.cur_outage_s, |tm| tm.elapsed(&self.clock));
            if tele_on {
                self.tele.emit(&TelemetryEvent::SfpUp {
                    t: t_slot,
                    outage_s: outage,
                });
            }
        }
        let mut goodput = if self.cfg.goodput && up {
            let rate = self.units[self.active].dep.design.sfp.optimal_goodput_gbps;
            rate * self.fsp.frame_success_prob(power)
        } else {
            0.0
        };

        // 4b. Hybrid fallback: the RF side channel rides through FSO
        // outages (and through the failback hold — traffic only moves back
        // onto FSO once it has proven stable). With `FallbackPolicy::Off`
        // this whole block is skipped: no extra world queries, no float
        // changes, and the goldens' slot stream is preserved bit-exactly.
        let mut rf_active = false;
        if let Some(rf) = self.rf.as_mut() {
            let was_rf = rf.policy.is_rf_active();
            rf_active = rf.policy.step(up, slot_s);
            if rf_active {
                let rx = if need_rx {
                    rx_pos
                } else {
                    self.units[self.active].dep.rx_world_params().q2
                };
                let tx = self.tx_positions[self.active];
                let occluded = self.occluders.iter().any(|o| o.blocks(tx, rx));
                let rf_rate = if self.cfg.goodput {
                    rf.channel.rate_gbps(tx.distance(rx), occluded)
                } else {
                    0.0
                };
                goodput = rf_rate;
                self.rf_slots += 1;
                self.rf_delivered_gb += rf_rate * slot_s;
            }
            if tele_on && was_rf != rf_active {
                if rf_active {
                    self.tele.emit(&TelemetryEvent::RfFailover { t: t_slot });
                } else {
                    self.tele.emit(&TelemetryEvent::RfFailback {
                        t: t_slot,
                        rf_s: rf.policy.last_rf_episode_s(),
                    });
                }
            }
        }
        let delivering = up || rf_active;

        let rec = EngineSlot {
            t: t_slot,
            active: self.active,
            los,
            power_dbm: power,
            link_up: delivering,
            rf_active,
            goodput_gbps: goodput,
            lin_speed: lin,
            ang_speed: ang,
        };
        if tele_on {
            self.tele.emit(&TelemetryEvent::SlotEnd {
                k: k_ev,
                t: t_slot,
                active: self.active as u32,
                power_dbm: power,
                margin_db: power - self.channel.sensitivity_dbm,
                link_up: delivering,
                rf_active,
                goodput_gbps: goodput,
            });
        }
        self.t = t_slot;
        self.motion_t = motion_t_slot;
        rec
    }
}

// ---------------------------------------------------------------------------
// Session builder
// ---------------------------------------------------------------------------

/// Validating builder for [`LinkSession`] — the construction API
/// ([`LinkSession::builder`] is the entry point):
///
/// ```no_run
/// # use cyclops_link::engine::{EngineConfig, LinkSession};
/// # use cyclops_link::telemetry::{JsonlSink, Telemetry};
/// # use cyclops_vrh::motion::StaticPose;
/// # use cyclops_geom::pose::Pose;
/// # fn demo(dep: cyclops_core::deployment::Deployment,
/// #         ctl: cyclops_core::tp::TpController) {
/// let sink = JsonlSink::create(std::path::Path::new("session.jsonl")).unwrap();
/// let mut session = LinkSession::builder(StaticPose(Pose::IDENTITY))
///     .deployment(dep, ctl)
///     .telemetry(Telemetry::with_sink_and_counters(Box::new(sink)))
///     .build()
///     .expect("valid config");
/// let slots = session.run(2.0);
/// # let _ = slots;
/// # }
/// ```
///
/// `build` validates the configuration ([`EngineConfig::validate`] plus the
/// unit list) instead of panicking mid-run. Unless overridden with
/// [`SessionBuilder::first_report`], single-unit sessions use
/// [`FirstReport::AfterPeriod`] (the single-TX methodology: pre-start
/// alignment consumes the t = 0 report) and multi-unit sessions
/// [`FirstReport::AtZero`] (the multi-TX methodology).
#[derive(Debug)]
pub struct SessionBuilder<M: Motion, S: TxSelector> {
    units: Vec<TxInstallation>,
    motion: M,
    occluders: Vec<Occluder>,
    selector: S,
    cfg: EngineConfig,
    telemetry: Telemetry,
    first_report: Option<FirstReport>,
    environment: Option<crate::channel::Environment>,
}

impl<M: Motion, S: TxSelector> SessionBuilder<M, S> {
    /// Adds one TX installation from its parts.
    pub fn deployment(mut self, dep: Deployment, ctl: TpController) -> Self {
        self.units.push(TxInstallation { dep, ctl });
        self
    }

    /// Adds one TX installation.
    pub fn unit(mut self, unit: TxInstallation) -> Self {
        self.units.push(unit);
        self
    }

    /// Adds several TX installations.
    pub fn units(mut self, units: impl IntoIterator<Item = TxInstallation>) -> Self {
        self.units.extend(units);
        self
    }

    /// Adds one occluder.
    pub fn occluder(mut self, occluder: Occluder) -> Self {
        self.occluders.push(occluder);
        self
    }

    /// Adds several occluders.
    pub fn occluders(mut self, occluders: impl IntoIterator<Item = Occluder>) -> Self {
        self.occluders.extend(occluders);
        self
    }

    /// Replaces the TX selector (changes the builder's selector type).
    pub fn selector<S2: TxSelector>(self, selector: S2) -> SessionBuilder<M, S2> {
        SessionBuilder {
            units: self.units,
            motion: self.motion,
            occluders: self.occluders,
            selector,
            cfg: self.cfg,
            telemetry: self.telemetry,
            first_report: self.first_report,
            environment: self.environment,
        }
    }

    /// Replaces the whole engine configuration.
    pub fn config(mut self, cfg: EngineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the slot length (seconds).
    pub fn slot_s(mut self, slot_s: f64) -> Self {
        self.cfg.slot_s = slot_s;
        self
    }

    /// Sets the tracker timing/noise model.
    pub fn tracker(mut self, tracker: TrackerConfig) -> Self {
        self.cfg.tracker = tracker;
        self
    }

    /// Enables the reliable control plane (fault-injected channel, ARQ,
    /// dead reckoning, re-acquisition).
    pub fn control(mut self, control: ControlPlaneConfig) -> Self {
        self.cfg.control = Some(control);
        self
    }

    /// Sets the §5.3 pause-on-outage operator protocol.
    pub fn pause_on_outage(mut self, pause: bool) -> Self {
        self.cfg.pause_on_outage = pause;
        self
    }

    /// Sets the hybrid FSO/RF fallback policy.
    pub fn fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.cfg.fallback = fallback;
        self
    }

    /// Attaches a telemetry configuration (sink and/or counters).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches an event sink (keeps any counter setting).
    pub fn telemetry_sink(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = if self.telemetry.counters_ref().is_some() {
            Telemetry::with_sink_and_counters(sink)
        } else {
            Telemetry::with_sink(sink)
        };
        self
    }

    /// Enables in-session counter/histogram aggregation (keeps any sink).
    pub fn telemetry_counters(mut self) -> Self {
        self.telemetry = match self.telemetry.take_sink() {
            Some(sink) => Telemetry::with_sink_and_counters(sink),
            None => Telemetry::counters(),
        };
        self
    }

    /// Overrides the first-report timing (the default follows the unit
    /// count; see [`FirstReport`]).
    pub fn first_report(mut self, first_report: FirstReport) -> Self {
        self.first_report = Some(first_report);
        self
    }

    /// Attaches a composable environment
    /// ([`Environment`](crate::channel::Environment)): per-slot path
    /// attenuation applied ahead of the SFP/channel math. An empty
    /// environment is stored as `None`, keeping the clean-air fast path —
    /// and the bit-identical power stream — of a session built without one.
    pub fn environment(mut self, env: crate::channel::Environment) -> Self {
        self.environment = if env.is_empty() { None } else { Some(env) };
        self
    }

    /// Validates and constructs the session.
    pub fn build(self) -> Result<LinkSession<M, S>, EngineConfigError> {
        if self.units.is_empty() {
            return Err(EngineConfigError::NoUnits);
        }
        self.cfg.validate()?;
        let first_report = self.first_report.unwrap_or(if self.units.len() == 1 {
            FirstReport::AfterPeriod
        } else {
            FirstReport::AtZero
        });
        Ok(LinkSession::assemble(
            self.units,
            self.motion,
            self.occluders,
            self.selector,
            self.cfg,
            self.telemetry,
            first_report,
            self.environment,
        ))
    }
}

// ---------------------------------------------------------------------------
// The §5.4 trace session
// ---------------------------------------------------------------------------

/// The §5.4 drift-model session: plays a head trace against the paper's
/// realignment/drift/tolerance rules, one boolean (connected?) per slot.
/// [`crate::trace_sim::simulate_trace`] is this session under [`run_slots`].
#[derive(Debug)]
pub struct TraceSession<'a> {
    trace: &'a HeadTrace,
    // Per-pair drift rates, precomputed once per trace and cached on it
    // (`HeadTrace::motion_rates`): the exact IEEE values `step_slot` would
    // compute per report, so consuming them is bit-identical — and repeated
    // simulations of one trace (parameter sweeps, benchmark reps) skip the
    // norm/acos work entirely.
    rates: &'a [cyclops_vrh::traces::MotionRate],
    p: crate::trace_sim::TraceSimParams,
    // Misalignment state, starting perfectly aligned.
    lat: f64,
    ang: f64,
    // Drift rates (per ms), from the most recent report pair.
    lat_rate: f64,
    ang_rate: f64,
    // Pending realignment completion time (ms) and whether it is a
    // dead-reckoned (extrapolated) one.
    realign_at: Option<(f64, bool)>,
    report_idx: usize,
}

impl<'a> TraceSession<'a> {
    /// Creates the session over a trace (which must have ≥ 2 samples).
    pub fn new(trace: &'a HeadTrace, p: crate::trace_sim::TraceSimParams) -> TraceSession<'a> {
        assert!(trace.len() >= 2, "need at least two samples");
        TraceSession {
            trace,
            rates: trace.motion_rates(),
            p,
            lat: 0.0,
            ang: 0.0,
            lat_rate: 0.0,
            ang_rate: 0.0,
            realign_at: None,
            report_idx: 0,
        }
    }

    /// Runs the session for `n_slots`, returning the per-slot connectivity —
    /// bit-identical to `run_slots(self, n_slots)` but several times faster
    /// (see `DESIGN.md` §12 for the measured numbers).
    ///
    /// Between events (a report arriving, a realignment completing) the only
    /// per-slot work in [`SlotSession::step_slot`] is the drift accumulation
    /// `lat += lat_rate * slot_ms` and the tolerance compare; the event
    /// checks are branches over state that cannot change mid-segment. This
    /// runner hoists those checks out: it finds the next event time
    /// (`min(next report, pending realignment)`), runs the drift-only slots
    /// before it in a fused loop (the hoisted `lat_rate * slot_ms` product
    /// is the same IEEE value every slot, so the accumulation sequence is
    /// bitwise unchanged), and handles the event slot inline with the exact
    /// operation sequence of `step_slot` (report consumption, realignment
    /// completion, drift, tolerance compare — in that order). Segment
    /// boundaries are decided by the *same* exact comparison `step_slot`
    /// uses (`event_t <= (k as f64 + 1.0) * slot_ms`), so float rounding
    /// cannot shift a slot across the boundary. Pinned by the `trace_corpus`
    /// engine-digest golden (which folds per-slot booleans) and by the
    /// `fused_run_matches_step_slot_exactly` test.
    pub fn run(&mut self, n_slots: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n_slots);
        self.run_impl(n_slots, |b| out.push(b));
        out
    }

    /// Runs the session for `n_slots`, returning only the number of
    /// connected slots — the same fused loop as [`TraceSession::run`]
    /// without materializing (or allocating) the per-slot vector. The count
    /// equals `run(n_slots).iter().filter(|&&b| b).count()` exactly;
    /// [`crate::trace_sim::simulate_corpus`] uses this path since the Fig-16
    /// CDF only needs per-trace on-fractions.
    pub fn run_count(&mut self, n_slots: usize) -> usize {
        let mut on = 0usize;
        self.run_impl(n_slots, |b| on += b as usize);
        on
    }

    /// The fused slot loop behind [`TraceSession::run`] /
    /// [`TraceSession::run_count`]: `emit` is called exactly once per slot,
    /// in slot order, with the same boolean `step_slot` would produce.
    ///
    /// Structure (one outer iteration per report period in the common case):
    /// fused drift-only segment to the next report; the report slot's event
    /// logic inline (verbatim `step_slot` operation order); then, when the
    /// resulting realignment completes before the next report arrives (the
    /// paper's 1.5 ms latency vs 10 ms report period), the 1–2 window slots
    /// as another fused segment and the completion slot inline. Segment
    /// boundaries are decided by the *same* exact comparison `step_slot`
    /// uses (`event_t <= (k as f64 + 1.0) * slot_ms`), and the hoisted
    /// `rate * slot_ms` products are the same IEEE values every slot, so
    /// the accumulation sequence is bitwise unchanged.
    #[inline]
    fn run_impl(&mut self, n_slots: usize, mut emit: impl FnMut(bool)) {
        let p = self.p;
        let slot_ms = p.slot_ms;
        let inv_slot = 1.0 / slot_ms;
        let tol_l = p.tol_lat_m;
        let tol_a = p.tol_ang_rad;
        let rates = self.rates;
        let n_rates = rates.len();
        // Session state lives in locals for the duration of the run (written
        // back at the end) so the hot loop never round-trips through `self`.
        let mut lat = self.lat;
        let mut ang = self.ang;
        let mut lat_rate = self.lat_rate;
        let mut ang_rate = self.ang_rate;
        let mut realign_at = self.realign_at;
        let mut report_idx = self.report_idx;
        let mut k = 0usize;

        // First slot whose end time (k+1)*slot_ms reaches event time `ev`:
        // a reciprocal-multiply guess, then corrected by the *exact*
        // comparison step_slot itself performs — float rounding in the guess
        // cannot shift the boundary.
        macro_rules! boundary {
            ($ev:expr) => {{
                let ev = $ev;
                if ev == f64::INFINITY {
                    n_slots
                } else {
                    let mut g = (((ev * inv_slot - 1.0).max(k as f64)) as usize).min(n_slots);
                    // `black_box` keeps LLVM from auto-vectorizing these
                    // 0-or-1-step correction walks into a 16-wide search
                    // (it assumes a trip count of ~`n_slots` from the loop
                    // bound; the vector prologue alone costs ~10× the walk).
                    while g > k && g as f64 * slot_ms >= ev {
                        g = std::hint::black_box(g - 1);
                    }
                    while g < n_slots && (g as f64 + 1.0) * slot_ms < ev {
                        g = std::hint::black_box(g + 1);
                    }
                    g
                }
            }};
        }
        // One event slot at index `k`: step_slot's operation sequence,
        // verbatim (report consumption, realignment completion, drift,
        // tolerance compare). Advances `k`.
        macro_rules! event_slot {
            () => {{
                let t_ms = (k as f64 + 1.0) * slot_ms;
                while report_idx < n_rates && rates[report_idx].t_report_ms <= t_ms {
                    let r = rates[report_idx];
                    report_idx += 1;
                    lat_rate = r.lat_per_ms;
                    ang_rate = r.ang_per_ms;
                    let lost = p.report_loss_prob > 0.0
                        && unit(cyclops_par::mix64(p.loss_seed, report_idx as u64))
                            < p.report_loss_prob;
                    if !lost {
                        realign_at = Some((r.t_report_ms + p.realign_latency_ms, false));
                    } else if p.dead_reckoning {
                        realign_at = Some((r.t_report_ms + p.realign_latency_ms, true));
                    }
                }
                if let Some((when, dr)) = realign_at {
                    if when <= t_ms {
                        let scale = if dr { p.dr_residual_scale } else { 1.0 };
                        lat = p.residual_lat_m * scale;
                        ang = p.residual_ang_rad * scale;
                        realign_at = None;
                    }
                }
                lat += lat_rate * slot_ms;
                ang += ang_rate * slot_ms;
                emit((lat <= tol_l) & (ang <= tol_a));
                k += 1;
            }};
        }
        // Fused drift-only segment [k, `$to`): no report arrives and no
        // realignment completes in these slots.
        macro_rules! drift_to {
            ($to:expr) => {{
                let to = $to;
                let lr = lat_rate * slot_ms;
                let ar = ang_rate * slot_ms;
                while k < to {
                    lat += lr;
                    ang += ar;
                    emit((lat <= tol_l) & (ang <= tol_a));
                    k += 1;
                }
            }};
        }

        while k < n_slots {
            if realign_at.is_some() {
                // Rare path (realignment latency exceeding the report
                // period, or a window cut by the trace end): one verbatim
                // per-slot step until the window resolves.
                event_slot!();
                continue;
            }
            // Drift to the next report, then the report slot itself.
            let next_report = if report_idx < n_rates {
                rates[report_idx].t_report_ms
            } else {
                f64::INFINITY
            };
            drift_to!(boundary!(next_report));
            if k >= n_slots {
                break;
            }
            event_slot!();
            // Fast path for the realignment window the report just opened:
            // if it completes before the next report arrives, its 1–2 slots
            // are drift-only — fuse them and run the completion slot inline,
            // all within this iteration.
            if let Some((when, _)) = realign_at {
                let nr = if report_idx < n_rates {
                    rates[report_idx].t_report_ms
                } else {
                    f64::INFINITY
                };
                // The window is 1–2 slots (1.5 ms latency vs 10 ms report
                // period), so a direct fused check loop beats the generic
                // boundary machinery. Window slots must see no report
                // (`nr > t_ms`) and no completion (`when > t_ms`) — the
                // exact `step_slot` comparisons; the completion slot
                // itself runs verbatim via `event_slot!`.
                let lr = lat_rate * slot_ms;
                let ar = ang_rate * slot_ms;
                let mut t_ms = (k as f64 + 1.0) * slot_ms;
                while k < n_slots && when > t_ms && nr > t_ms {
                    lat += lr;
                    ang += ar;
                    emit((lat <= tol_l) & (ang <= tol_a));
                    k = std::hint::black_box(k + 1);
                    t_ms = (k as f64 + 1.0) * slot_ms;
                }
                if k < n_slots && when <= t_ms && nr > t_ms {
                    event_slot!();
                }
            }
        }
        self.lat = lat;
        self.ang = ang;
        self.lat_rate = lat_rate;
        self.ang_rate = ang_rate;
        self.realign_at = realign_at;
        self.report_idx = report_idx;
    }
}

impl SlotSession for TraceSession<'_> {
    type Record = bool;

    fn step_slot(&mut self, k: usize) -> bool {
        let p = &self.p;
        let t_ms = (k as f64 + 1.0) * p.slot_ms;

        // Reports that arrived by this slot.
        while self.report_idx + 1 < self.trace.len()
            && self.trace.samples[self.report_idx + 1].t_ms <= t_ms
        {
            self.report_idx += 1;
            let b_t_ms = self.trace.samples[self.report_idx].t_ms;
            // Drift tracks true motion regardless of report delivery. The
            // rates are the precomputed exact values of the pair math
            // (`HeadTrace::motion_rates`).
            let r = self.rates[self.report_idx - 1];
            self.lat_rate = r.lat_per_ms;
            self.ang_rate = r.ang_per_ms;
            let lost = p.report_loss_prob > 0.0
                && unit(cyclops_par::mix64(p.loss_seed, self.report_idx as u64))
                    < p.report_loss_prob;
            if !lost {
                self.realign_at = Some((b_t_ms + p.realign_latency_ms, false));
            } else if p.dead_reckoning {
                // The TP realigns on the extrapolated pose instead — same
                // latency, degraded residual.
                self.realign_at = Some((b_t_ms + p.realign_latency_ms, true));
            }
            // Lost without DR: no realignment; drift keeps accruing until
            // the next delivered report.
        }

        // Realignment completion.
        if let Some((when, dr)) = self.realign_at {
            if when <= t_ms {
                let scale = if dr { p.dr_residual_scale } else { 1.0 };
                self.lat = p.residual_lat_m * scale;
                self.ang = p.residual_ang_rad * scale;
                self.realign_at = None;
            }
        }

        // Drift accrues every slot.
        self.lat += self.lat_rate * p.slot_ms;
        self.ang += self.ang_rate * p.slot_ms;

        self.lat <= p.tol_lat_m && self.ang <= p.tol_ang_rad
    }
}

// ---------------------------------------------------------------------------
// Multi-session (fleet) workloads
// ---------------------------------------------------------------------------

/// Configuration of a multi-session workload: N independently-seeded
/// headsets, each served by its own clone of the M TX installations.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of concurrent sessions (headsets).
    pub n_sessions: usize,
    /// Duration of each session (seconds).
    pub duration_s: f64,
    /// Master seed; session `i` draws its motion and fault streams from
    /// `mix64(seed, 1 + i)` — independent per session, reproducible, and
    /// identical at any thread count.
    pub seed: u64,
    /// Hand-held motion model applied per session (seeded per session).
    pub motion: ArbitraryMotionConfig,
    /// Base pose each session starts from.
    pub base_pose: Pose,
    /// Control-plane template; each session re-keys the fault seed by its
    /// session stream.
    pub control: Option<ControlPlaneConfig>,
    /// Occluder templates; each session rebuilds them with per-session walk
    /// seeds.
    pub occluders: Vec<Occluder>,
    /// Handover debounce for multi-unit fleets (seconds).
    pub debounce_s: f64,
    /// The paper's §5.3 operator protocol: on a link loss the user pauses
    /// and resumes once the link is back. Without it a hand-held session
    /// rarely holds the signal through the multi-second SFP relink.
    pub pause_on_outage: bool,
    /// Attach per-session telemetry counters ([`Telemetry::counters`]) and
    /// roll them up in the [`FleetRollup`]. Off by default (telemetry is
    /// zero-cost when disabled).
    pub collect_telemetry: bool,
    /// Hybrid FSO/RF fallback applied to every session (default: off).
    pub fallback: FallbackPolicy,
    /// Tracker timing/noise model applied to every session (default: the
    /// Rift-S model, matching the pre-registry engine bit-exactly).
    pub tracker: TrackerConfig,
    /// Environment template applied to every session; each session re-keys
    /// the stage streams by its session seed. `None` = clean air.
    pub environment: Option<crate::channel::Environment>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_sessions: 8,
            duration_s: 2.0,
            seed: 1,
            motion: ArbitraryMotionConfig::default(),
            base_pose: Pose::translation(Vec3::new(0.0, 0.0, 1.75)),
            control: None,
            occluders: Vec::new(),
            debounce_s: 0.03,
            pause_on_outage: true,
            collect_telemetry: false,
            fallback: FallbackPolicy::Off,
            tracker: TrackerConfig::default(),
            environment: None,
        }
    }
}

impl FleetConfig {
    /// Starts a validating builder over the default fleet configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            cfg: FleetConfig::default(),
        }
    }
}

/// Validating builder for [`FleetConfig`] (entry point:
/// [`FleetConfig::builder`]).
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    cfg: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the number of concurrent sessions.
    pub fn n_sessions(mut self, n: usize) -> Self {
        self.cfg.n_sessions = n;
        self
    }

    /// Sets the per-session duration (seconds).
    pub fn duration_s(mut self, duration_s: f64) -> Self {
        self.cfg.duration_s = duration_s;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the per-session motion model.
    pub fn motion(mut self, motion: ArbitraryMotionConfig) -> Self {
        self.cfg.motion = motion;
        self
    }

    /// Sets the base pose sessions start from.
    pub fn base_pose(mut self, base_pose: Pose) -> Self {
        self.cfg.base_pose = base_pose;
        self
    }

    /// Sets the control-plane template.
    pub fn control(mut self, control: ControlPlaneConfig) -> Self {
        self.cfg.control = Some(control);
        self
    }

    /// Adds an occluder template.
    pub fn occluder(mut self, occluder: Occluder) -> Self {
        self.cfg.occluders.push(occluder);
        self
    }

    /// Sets the handover debounce (seconds).
    pub fn debounce_s(mut self, debounce_s: f64) -> Self {
        self.cfg.debounce_s = debounce_s;
        self
    }

    /// Sets the §5.3 pause-on-outage protocol.
    pub fn pause_on_outage(mut self, pause: bool) -> Self {
        self.cfg.pause_on_outage = pause;
        self
    }

    /// Enables per-session telemetry counters and the fleet roll-up.
    pub fn collect_telemetry(mut self, collect: bool) -> Self {
        self.cfg.collect_telemetry = collect;
        self
    }

    /// Sets the hybrid FSO/RF fallback policy for every session.
    pub fn fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.cfg.fallback = fallback;
        self
    }

    /// Sets the tracker timing/noise model for every session.
    pub fn tracker(mut self, tracker: TrackerConfig) -> Self {
        self.cfg.tracker = tracker;
        self
    }

    /// Sets the environment template; an empty environment is stored as
    /// `None` (the clean-air fast path).
    pub fn environment(mut self, env: crate::channel::Environment) -> Self {
        self.cfg.environment = if env.is_empty() { None } else { Some(env) };
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, EngineConfigError> {
        let c = &self.cfg;
        if c.n_sessions == 0 {
            return Err(EngineConfigError::InvalidFleet("n_sessions must be >= 1"));
        }
        if !(c.duration_s.is_finite() && c.duration_s > 0.0) {
            return Err(EngineConfigError::InvalidFleet(
                "duration_s must be finite and positive",
            ));
        }
        if !(c.debounce_s.is_finite() && c.debounce_s >= 0.0) {
            return Err(EngineConfigError::InvalidFleet(
                "debounce_s must be finite and non-negative",
            ));
        }
        // Pre-validate the per-session engine config the fleet driver will
        // assemble, so bad tracker/control templates fail here instead of
        // mid-fan-out.
        EngineConfig {
            tracker: c.tracker,
            control: c.control,
            ..EngineConfig::default()
        }
        .validate()?;
        Ok(self.cfg)
    }
}

/// Per-session outcome of a fleet run.
#[derive(Debug, Clone, Copy)]
pub struct SessionReport {
    /// Session index.
    pub session: usize,
    /// The session's derived seed.
    pub seed: u64,
    /// Slots simulated.
    pub slots: usize,
    /// Fraction of slots with the link up.
    pub up_frac: f64,
    /// Fraction of slots with received power above the SFP sensitivity —
    /// the paper's Fig. 14 "availability", which ignores the relink dead
    /// time that `up_frac` pays after every dip.
    pub signal_frac: f64,
    /// Mean goodput over the run (Gbps).
    pub mean_goodput_gbps: f64,
    /// Fraction of slots carried by the RF fallback (0 with the fallback
    /// off; counted toward `up_frac`).
    pub rf_frac: f64,
    /// Mean received power over the run (dBm).
    pub mean_power_dbm: f64,
    /// Handovers performed.
    pub handovers: u64,
    /// Fault-handling counters.
    pub stats: SessionStats,
    /// TP reports processed (across units).
    pub tp_reports: u64,
    /// TP pointing failures (across units).
    pub tp_failures: u64,
    /// Aggregated telemetry (`Some` iff [`FleetConfig::collect_telemetry`]).
    pub telemetry: Option<SessionTelemetry>,
    /// Scheduling/QoE accounting (`Some` iff the fleet ran through
    /// [`run_fleet_scheduled`](crate::sched::run_fleet_scheduled);
    /// `None` on the unscheduled private-clone path).
    pub sched: Option<crate::sched::SchedSessionStats>,
    /// Hardware-pool index this session ran on (`Some` iff the fleet ran
    /// through [`run_fleet_mixed`]; indexes the pool list passed there).
    pub profile: Option<u32>,
}

/// Fleet-level rollup of the per-session counters.
#[derive(Debug, Clone, Copy)]
pub struct FleetRollup {
    /// Sessions run.
    pub n_sessions: usize,
    /// Total slots simulated across the fleet.
    pub total_slots: usize,
    /// Mean of the per-session up fractions.
    pub mean_up_frac: f64,
    /// Mean of the per-session signal-availability fractions.
    pub mean_signal_frac: f64,
    /// Worst session's up fraction.
    pub min_up_frac: f64,
    /// Sum of the per-session mean goodputs (aggregate offered load, Gbps).
    pub sum_goodput_gbps: f64,
    /// Total handovers.
    pub total_handovers: u64,
    /// Total link-down episodes.
    pub total_outages: u64,
    /// Longest outage across the fleet (seconds).
    pub worst_outage_s: f64,
    /// Total dead-reckoned commands.
    pub total_extrapolated: u64,
    /// Total re-acquisition probes.
    pub total_reacq_steps: u64,
    /// Total control frames sent (0 when the fleet ran the legacy path).
    pub ctrl_sent: u64,
    /// Total control frames delivered.
    pub ctrl_delivered: u64,
    /// Total ARQ retransmissions.
    pub ctrl_retransmits: u64,
    /// Mean of the per-session RF-carried fractions.
    pub mean_rf_frac: f64,
    /// Total FSO → RF failovers across the fleet.
    pub total_failovers: u64,
    /// Total RF → FSO failbacks across the fleet.
    pub total_failbacks: u64,
    /// Total RF-carried slots across the fleet.
    pub total_rf_slots: u64,
    /// Total gigabits delivered over the RF fallback across the fleet.
    pub rf_delivered_gb: f64,
    /// Merged per-session telemetry (`Some` iff the fleet ran with
    /// [`FleetConfig::collect_telemetry`]).
    pub telemetry: Option<SessionTelemetry>,
    /// Scheduling/QoE rollup (`Some` iff the sessions carry scheduling
    /// accounting, i.e. the fleet ran through
    /// [`run_fleet_scheduled`](crate::sched::run_fleet_scheduled)).
    pub sched: Option<crate::sched::SchedRollup>,
}

/// Outcome of [`run_fleet`]: per-session reports (in session order) plus
/// the rollup.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Per-session reports, indexed by session.
    pub sessions: Vec<SessionReport>,
}

impl FleetSummary {
    /// Aggregates the per-session counters. Streams the reports through a
    /// [`FleetRollupAcc`] in session order, so the result is bit-identical
    /// to the historical single-fold implementation.
    pub fn rollup(&self) -> FleetRollup {
        let mut acc = FleetRollupAcc::new();
        for s in &self.sessions {
            acc.absorb(s);
        }
        acc.finish()
    }
}

/// Streaming accumulator behind [`FleetSummary::rollup`]: absorbs
/// [`SessionReport`]s one at a time (or merges partial accumulators), so a
/// fleet rollup needs O(1) memory instead of a materialized report vector
/// — the aggregation substrate for venue-scale fleets (ROADMAP item 1).
///
/// Mean-valued [`FleetRollup`] fields are carried as running sums and only
/// divided in [`FleetRollupAcc::finish`], so `absorb`-in-session-order
/// reproduces the historical fold bit-for-bit. [`FleetRollupAcc::merge`]
/// combines accumulators built over disjoint session ranges; the counters
/// are exact, while the float sums re-associate (merge order changes the
/// rounding, not the math).
#[derive(Debug, Clone)]
pub struct FleetRollupAcc {
    r: FleetRollup,
    n_sched: usize,
    avail_sum: f64,
    stall_frac_sum: f64,
    jain_sum: f64,
    jain_sum_sq: f64,
}

impl Default for FleetRollupAcc {
    fn default() -> Self {
        FleetRollupAcc::new()
    }
}

impl FleetRollupAcc {
    /// An empty accumulator.
    pub fn new() -> FleetRollupAcc {
        FleetRollupAcc {
            r: FleetRollup {
                n_sessions: 0,
                total_slots: 0,
                mean_up_frac: 0.0,
                mean_signal_frac: 0.0,
                min_up_frac: f64::INFINITY,
                sum_goodput_gbps: 0.0,
                total_handovers: 0,
                total_outages: 0,
                worst_outage_s: 0.0,
                total_extrapolated: 0,
                total_reacq_steps: 0,
                ctrl_sent: 0,
                ctrl_delivered: 0,
                ctrl_retransmits: 0,
                mean_rf_frac: 0.0,
                total_failovers: 0,
                total_failbacks: 0,
                total_rf_slots: 0,
                rf_delivered_gb: 0.0,
                telemetry: None,
                sched: None,
            },
            n_sched: 0,
            avail_sum: 0.0,
            stall_frac_sum: 0.0,
            jain_sum: 0.0,
            jain_sum_sq: 0.0,
        }
    }

    /// Folds one session report into the accumulator.
    pub fn absorb(&mut self, s: &SessionReport) {
        let r = &mut self.r;
        r.n_sessions += 1;
        r.total_slots += s.slots;
        r.mean_up_frac += s.up_frac;
        r.mean_signal_frac += s.signal_frac;
        r.min_up_frac = r.min_up_frac.min(s.up_frac);
        r.sum_goodput_gbps += s.mean_goodput_gbps;
        r.total_handovers += s.handovers;
        r.total_outages += s.stats.n_outages;
        r.worst_outage_s = r.worst_outage_s.max(s.stats.longest_outage_s);
        r.total_extrapolated += s.stats.n_extrapolated;
        r.total_reacq_steps += s.stats.n_reacq_steps;
        r.mean_rf_frac += s.rf_frac;
        r.total_failovers += s.stats.rf.failovers;
        r.total_failbacks += s.stats.rf.failbacks;
        r.total_rf_slots += s.stats.rf.rf_slots;
        r.rf_delivered_gb += s.stats.rf_delivered_gb;
        if let Some(c) = s.stats.control {
            r.ctrl_sent += c.sent;
            r.ctrl_delivered += c.delivered;
            r.ctrl_retransmits += c.retransmits;
        }
        if let Some(t) = s.telemetry.as_ref() {
            match r.telemetry.as_mut() {
                Some(acc) => acc.merge(t),
                None => r.telemetry = Some(*t),
            }
        }
        if let Some(sc) = s.sched {
            let sr = r.sched.get_or_insert_with(|| crate::sched::SchedRollup {
                min_availability: f64::INFINITY,
                ..Default::default()
            });
            sr.n_admitted += sc.admitted as usize;
            sr.total_granted += sc.granted_slots;
            sr.total_served += sc.served_slots;
            sr.total_denied += sc.denied_slots;
            sr.total_preempts += sc.preempts;
            sr.min_availability = sr.min_availability.min(sc.availability);
            sr.sum_served_gbps += sc.mean_served_gbps;
            sr.worst_stall_s = sr.worst_stall_s.max(sc.stall_s);
            sr.total_stall_events += sc.stall_events;
            sr.total_frames_played += sc.frames_played;
            self.n_sched += 1;
            self.avail_sum += sc.availability;
            self.stall_frac_sum += sc.stall_frac;
            if sc.admitted {
                self.jain_sum += sc.mean_served_gbps;
                self.jain_sum_sq += sc.mean_served_gbps * sc.mean_served_gbps;
            }
        }
    }

    /// Combines another accumulator (built over a disjoint session range)
    /// into this one.
    pub fn merge(&mut self, o: &FleetRollupAcc) {
        let r = &mut self.r;
        let q = &o.r;
        r.n_sessions += q.n_sessions;
        r.total_slots += q.total_slots;
        r.mean_up_frac += q.mean_up_frac;
        r.mean_signal_frac += q.mean_signal_frac;
        r.min_up_frac = r.min_up_frac.min(q.min_up_frac);
        r.sum_goodput_gbps += q.sum_goodput_gbps;
        r.total_handovers += q.total_handovers;
        r.total_outages += q.total_outages;
        r.worst_outage_s = r.worst_outage_s.max(q.worst_outage_s);
        r.total_extrapolated += q.total_extrapolated;
        r.total_reacq_steps += q.total_reacq_steps;
        r.ctrl_sent += q.ctrl_sent;
        r.ctrl_delivered += q.ctrl_delivered;
        r.ctrl_retransmits += q.ctrl_retransmits;
        r.mean_rf_frac += q.mean_rf_frac;
        r.total_failovers += q.total_failovers;
        r.total_failbacks += q.total_failbacks;
        r.total_rf_slots += q.total_rf_slots;
        r.rf_delivered_gb += q.rf_delivered_gb;
        if let Some(t) = q.telemetry.as_ref() {
            match r.telemetry.as_mut() {
                Some(acc) => acc.merge(t),
                None => r.telemetry = Some(*t),
            }
        }
        if let Some(qs) = q.sched.as_ref() {
            let sr = r.sched.get_or_insert_with(|| crate::sched::SchedRollup {
                min_availability: f64::INFINITY,
                ..Default::default()
            });
            sr.n_admitted += qs.n_admitted;
            sr.total_granted += qs.total_granted;
            sr.total_served += qs.total_served;
            sr.total_denied += qs.total_denied;
            sr.total_preempts += qs.total_preempts;
            sr.min_availability = sr.min_availability.min(qs.min_availability);
            sr.sum_served_gbps += qs.sum_served_gbps;
            sr.worst_stall_s = sr.worst_stall_s.max(qs.worst_stall_s);
            sr.total_stall_events += qs.total_stall_events;
            sr.total_frames_played += qs.total_frames_played;
        }
        self.n_sched += o.n_sched;
        self.avail_sum += o.avail_sum;
        self.stall_frac_sum += o.stall_frac_sum;
        self.jain_sum += o.jain_sum;
        self.jain_sum_sq += o.jain_sum_sq;
    }

    /// Finalizes the rollup: divides the running sums into means and
    /// computes the Jain fairness index over the admitted sessions.
    pub fn finish(mut self) -> FleetRollup {
        let n = self.r.n_sessions;
        if n > 0 {
            self.r.mean_up_frac /= n as f64;
            self.r.mean_signal_frac /= n as f64;
            self.r.mean_rf_frac /= n as f64;
        } else {
            self.r.min_up_frac = 0.0;
        }
        if let Some(sr) = self.r.sched.as_mut() {
            let ns = self.n_sched.max(1) as f64;
            sr.mean_availability = self.avail_sum / ns;
            sr.mean_stall_frac = self.stall_frac_sum / ns;
            sr.fairness_jain = if self.jain_sum_sq > 0.0 {
                (self.jain_sum * self.jain_sum) / (sr.n_admitted.max(1) as f64 * self.jain_sum_sq)
            } else {
                1.0
            };
        }
        self.r
    }
}

/// The concrete session type fleet drivers run.
pub(crate) type FleetSession = LinkSession<ArbitraryMotion, BestMargin>;

/// Builds fleet session `i` against a private clone of `units` — the one
/// constructor shared by [`run_fleet`] and the scheduled driver
/// ([`crate::sched::run_fleet_scheduled`]), so both paths derive the same
/// per-session seed, motion, fault, and occluder streams and their physics
/// timelines are bit-identical. Emits the `SessionStart` telemetry event.
/// Returns the session and its derived seed.
pub(crate) fn build_fleet_session(
    units: &[TxInstallation],
    cfg: &FleetConfig,
    i: usize,
) -> (FleetSession, u64) {
    let seed = cyclops_par::mix64(cfg.seed, 1 + i as u64);
    let motion = ArbitraryMotion::new(cfg.base_pose, cfg.motion, seed);
    let mut control = cfg.control;
    if let Some(c) = control.as_mut() {
        c.fault.seed = cyclops_par::mix64(c.fault.seed, 1 + i as u64);
    }
    let occluders: Vec<Occluder> = cfg
        .occluders
        .iter()
        .enumerate()
        .map(|(j, o)| {
            Occluder::new(
                o.center,
                o.radius,
                o.speed,
                cyclops_par::mix64(seed, 0x0cc1 + j as u64),
            )
        })
        .collect();
    let ecfg = EngineConfig {
        control,
        los_gating: !occluders.is_empty(),
        pause_on_outage: cfg.pause_on_outage,
        fallback: cfg.fallback,
        tracker: cfg.tracker,
        ..EngineConfig::default()
    };
    let selector = BestMargin::new(units[0].dep.design, cfg.debounce_s);
    let telemetry = if cfg.collect_telemetry {
        Telemetry::counters()
    } else {
        Telemetry::off()
    };
    let mut builder = LinkSession::builder(motion)
        .units(units.to_vec())
        .occluders(occluders)
        .selector(selector)
        .config(ecfg)
        .telemetry(telemetry)
        .first_report(FirstReport::AtZero);
    if let Some(env) = &cfg.environment {
        // Re-key every stage stream by the session seed so fleet sessions
        // see independent scintillation/occluder draws.
        builder = builder.environment(env.reseeded(seed));
    }
    let mut session = builder.build().expect("fleet engine config must be valid");
    if cfg.collect_telemetry {
        session.telemetry_mut().emit(&TelemetryEvent::SessionStart {
            session: i as u64,
            seed,
        });
    }
    (session, seed)
}

/// Streaming per-slot sums a fleet session folds into its report — shared
/// by [`run_fleet`]'s internal fold and the scheduled driver so the
/// derived [`SessionReport`] fields are computed identically on both paths
/// (counts and running sums; no duration-proportional buffering).
pub(crate) struct SlotSums {
    pub(crate) slots: usize,
    n_up: usize,
    n_sig: usize,
    n_rf: usize,
    goodput_sum: f64,
    power_sum: f64,
}

impl SlotSums {
    pub(crate) fn new() -> SlotSums {
        SlotSums {
            slots: 0,
            n_up: 0,
            n_sig: 0,
            n_rf: 0,
            goodput_sum: 0.0,
            power_sum: 0.0,
        }
    }

    pub(crate) fn absorb(&mut self, r: &EngineSlot, sens_dbm: f64) {
        self.slots += 1;
        self.n_up += r.link_up as usize;
        self.n_sig += (r.power_dbm >= sens_dbm) as usize;
        self.n_rf += r.rf_active as usize;
        self.goodput_sum += r.goodput_gbps;
        self.power_sum += r.power_dbm;
    }

    pub(crate) fn report<M: Motion, S: TxSelector>(
        &self,
        i: usize,
        seed: u64,
        session: &LinkSession<M, S>,
    ) -> SessionReport {
        let n = self.slots.max(1) as f64;
        let tp = session.tp_metrics();
        SessionReport {
            session: i,
            seed,
            slots: self.slots,
            up_frac: self.n_up as f64 / n,
            signal_frac: self.n_sig as f64 / n,
            mean_goodput_gbps: self.goodput_sum / n,
            rf_frac: self.n_rf as f64 / n,
            mean_power_dbm: self.power_sum / n,
            handovers: session.n_handovers(),
            stats: session.session_stats(),
            tp_reports: tp.n_reports,
            tp_failures: tp.n_failures,
            telemetry: session.telemetry().copied(),
            sched: None,
            profile: None,
        }
    }
}

/// Runs one fleet session (index `i`) against a private clone of `units`.
fn run_fleet_session(units: &[TxInstallation], cfg: &FleetConfig, i: usize) -> SessionReport {
    let (mut session, seed) = build_fleet_session(units, cfg, i);
    let sens = units[0].dep.design.sfp.rx_sensitivity_dbm;
    let mut sums = SlotSums::new();
    session.run_each(cfg.duration_s, |r| sums.absorb(&r, sens));
    if cfg.collect_telemetry {
        session.telemetry_mut().emit(&TelemetryEvent::SessionEnd {
            session: i as u64,
            slots: sums.slots as u64,
        });
    }
    sums.report(i, seed, &session)
}

/// Runs `cfg.n_sessions` independently-seeded sessions, each against its
/// own clone of `units`, and collects the reports in session-index order.
///
/// Sessions are independent, so under the `parallel` feature they run on
/// worker threads and are collected in index order — bit-identical to the
/// serial loop at any thread count.
pub fn run_fleet(units: &[TxInstallation], cfg: &FleetConfig) -> FleetSummary {
    let idx: Vec<usize> = (0..cfg.n_sessions).collect();
    let one = |&i: &usize| run_fleet_session(units, cfg, i);
    #[cfg(feature = "parallel")]
    let sessions = cyclops_par::par_map(&idx, 1, one);
    #[cfg(not(feature = "parallel"))]
    let sessions: Vec<SessionReport> = idx.iter().map(one).collect();
    FleetSummary { sessions }
}

/// [`run_fleet`] that streams straight into the rollup: sessions run in
/// fixed-size batches and each report is absorbed into a
/// [`FleetRollupAcc`] in session order, so memory stays O(batch) instead
/// of O(sessions) — and the absorb order matches
/// [`FleetSummary::rollup`]'s fold exactly, making the result
/// bit-identical to `run_fleet(units, cfg).rollup()` at any thread count.
pub fn run_fleet_rollup(units: &[TxInstallation], cfg: &FleetConfig) -> FleetRollup {
    const BATCH: usize = 64;
    let mut acc = FleetRollupAcc::new();
    let mut lo = 0;
    while lo < cfg.n_sessions {
        let hi = (lo + BATCH).min(cfg.n_sessions);
        let idx: Vec<usize> = (lo..hi).collect();
        let one = |&i: &usize| run_fleet_session(units, cfg, i);
        #[cfg(feature = "parallel")]
        let reports = cyclops_par::par_map(&idx, 1, one);
        #[cfg(not(feature = "parallel"))]
        let reports: Vec<SessionReport> = idx.iter().map(one).collect();
        for r in &reports {
            acc.absorb(r);
        }
        lo = hi;
    }
    acc.finish()
}

// ---------------------------------------------------------------------------
// Heterogeneous (mixed-hardware) fleets
// ---------------------------------------------------------------------------

/// One hardware pool of a mixed fleet: the TX installations plus the
/// tracker model of the headset class served by them. Build from a
/// registry profile ([`crate::registry::HardwareProfile`]) or by hand.
#[derive(Debug, Clone)]
pub struct FleetPool {
    /// Display label (e.g. the profile's `"25g-lr/galvo-fast/quest"`).
    pub label: String,
    /// The TX installations sessions of this pool run against.
    pub units: Vec<TxInstallation>,
    /// The tracker model of this pool's headset class.
    pub tracker: TrackerConfig,
}

/// Runs a mixed-hardware fleet: session `i` runs on pool `i % pools.len()`
/// with the shared [`FleetConfig`] template (seeds, motion, faults,
/// occluders, environment are all derived exactly as in [`run_fleet`], from
/// the global session index — so pool membership never perturbs another
/// session's streams). Each report is stamped with its pool index for
/// per-profile accounting ([`FleetSummary::profile_rollups`]).
pub fn run_fleet_mixed(
    pools: &[FleetPool],
    cfg: &FleetConfig,
) -> Result<FleetSummary, EngineConfigError> {
    if pools.is_empty() {
        return Err(EngineConfigError::InvalidFleet(
            "mixed fleet needs at least one pool",
        ));
    }
    for p in pools {
        if p.units.is_empty() {
            return Err(EngineConfigError::NoUnits);
        }
    }
    // Per-pool config clones up front: the only field that varies is the
    // tracker; everything seed-bearing stays on the shared template.
    let cfgs: Vec<FleetConfig> = pools
        .iter()
        .map(|p| FleetConfig {
            tracker: p.tracker,
            ..cfg.clone()
        })
        .collect();
    let one = |&i: &usize| {
        let pool = i % pools.len();
        let mut r = run_fleet_session(&pools[pool].units, &cfgs[pool], i);
        r.profile = Some(pool as u32);
        r
    };
    let idx: Vec<usize> = (0..cfg.n_sessions).collect();
    #[cfg(feature = "parallel")]
    let sessions = cyclops_par::par_map(&idx, 1, one);
    #[cfg(not(feature = "parallel"))]
    let sessions: Vec<SessionReport> = idx.iter().map(one).collect();
    Ok(FleetSummary { sessions })
}

impl FleetSummary {
    /// Per-profile rollups of a mixed fleet: one `(pool index, rollup)` per
    /// pool that ran at least one session, in pool order. Sessions without
    /// a profile stamp (a homogeneous [`run_fleet`]) are skipped.
    pub fn profile_rollups(&self) -> Vec<(u32, FleetRollup)> {
        let mut pools: Vec<u32> = self.sessions.iter().filter_map(|s| s.profile).collect();
        pools.sort_unstable();
        pools.dedup();
        pools
            .into_iter()
            .map(|p| {
                let mut acc = FleetRollupAcc::new();
                for s in self.sessions.iter().filter(|s| s.profile == Some(p)) {
                    acc.absorb(s);
                }
                (p, acc.finish())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_geom::vec3::v3;

    #[test]
    fn single_tx_selector_never_switches() {
        let mut s = SingleTx;
        let ctx = SelectCtx {
            active: 0,
            signal: false,
            slot_s: 1e-3,
            rx_pos: Vec3::ZERO,
            tx_positions: &[Vec3::ZERO, v3(1.0, 0.0, 0.0)],
            occluders: &[],
        };
        for _ in 0..100 {
            assert_eq!(s.on_slot(&ctx), None);
        }
    }

    #[test]
    fn dark_debounce_waits_then_picks_nearest_visible() {
        let mut s = DarkDebounce::new(0.03);
        let tx = [v3(-1.0, 2.0, 0.0), v3(0.4, 2.0, 0.0), v3(3.0, 2.0, 0.0)];
        let dark = |sel: &mut DarkDebounce| {
            sel.on_slot(&SelectCtx {
                active: 0,
                signal: false,
                slot_s: 1e-3,
                rx_pos: Vec3::ZERO,
                tx_positions: &tx,
                occluders: &[],
            })
        };
        // 29 dark ms: still debouncing.
        for _ in 0..29 {
            assert_eq!(dark(&mut s), None);
        }
        // 30th dark slot: nearest sibling (unit 1) wins.
        assert_eq!(dark(&mut s), Some(1));
    }

    #[test]
    fn dark_debounce_resets_on_signal() {
        let mut s = DarkDebounce::new(0.03);
        let tx = [v3(-1.0, 2.0, 0.0), v3(0.4, 2.0, 0.0)];
        let slot = |sel: &mut DarkDebounce, signal: bool| {
            sel.on_slot(&SelectCtx {
                active: 0,
                signal,
                slot_s: 1e-3,
                rx_pos: Vec3::ZERO,
                tx_positions: &tx,
                occluders: &[],
            })
        };
        for _ in 0..29 {
            assert_eq!(slot(&mut s, false), None);
        }
        assert_eq!(slot(&mut s, true), None); // signal resets the clock
        for _ in 0..29 {
            assert_eq!(slot(&mut s, false), None);
        }
        assert_eq!(slot(&mut s, false), Some(1));
    }

    #[test]
    fn margin_selector_without_hysteresis_matches_legacy_semantics() {
        let mut sel = MarginSelector::new(0.05);
        // Active usable: deliver, never switch.
        let (d, a) = sel.step(0, 2, |i| if i == 0 { 1.0 } else { 10.0 }, 1e-3);
        assert!(d);
        assert_eq!(a, 0);
        // Active dead: switch to the best usable, pay the delay.
        let (d, a) = sel.step(0, 2, |i| if i == 0 { -1.0 } else { 3.0 }, 1e-3);
        assert!(!d);
        assert_eq!(a, 1);
        assert!(sel.switching());
    }

    #[test]
    fn margin_selector_hysteresis_upgrades_only_past_threshold() {
        let mut sel = MarginSelector::new(0.0);
        sel.hysteresis_db = Some(2.0);
        // 1 dB better: below hysteresis, stay.
        let (d, a) = sel.step(0, 2, |i| if i == 0 { 5.0 } else { 6.0 }, 1e-3);
        assert!(d);
        assert_eq!(a, 0);
        // 3 dB better: upgrade.
        let (_, a) = sel.step(0, 2, |i| if i == 0 { 5.0 } else { 8.0 }, 1e-3);
        assert_eq!(a, 1);
    }

    #[test]
    fn trace_session_matches_simulate_trace() {
        use crate::trace_sim::{simulate_trace, TraceSimParams};
        use cyclops_vrh::traces::TraceGenConfig;
        let tr = HeadTrace::generate(&TraceGenConfig::default(), 4242);
        let p = TraceSimParams {
            report_loss_prob: 0.25,
            loss_seed: 9,
            dead_reckoning: true,
            ..Default::default()
        };
        let r = simulate_trace(&tr, &p);
        let n_slots = ((tr.duration_s() * 1e3) / p.slot_ms).floor() as usize;
        let mut s = TraceSession::new(&tr, p);
        let slots = run_slots(&mut s, n_slots);
        assert_eq!(r.slots_on, slots);
    }

    #[test]
    fn fleet_reports_are_deterministic_and_per_session_seeded() {
        let units = crate::multi_tx::tests::two_units(911);
        let cfg = FleetConfig {
            n_sessions: 3,
            duration_s: 0.5,
            seed: 77,
            ..Default::default()
        };
        let a = run_fleet(&units, &cfg);
        let b = run_fleet(&units, &cfg);
        assert_eq!(a.sessions.len(), 3);
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.up_frac.to_bits(), y.up_frac.to_bits());
            assert_eq!(x.mean_goodput_gbps.to_bits(), y.mean_goodput_gbps.to_bits());
            assert_eq!(x.stats.n_outages, y.stats.n_outages);
        }
        // Sessions are independently seeded: their streams must differ.
        assert_ne!(a.sessions[0].seed, a.sessions[1].seed);
        let r = a.rollup();
        assert_eq!(r.n_sessions, 3);
        assert_eq!(r.total_slots, a.sessions.iter().map(|s| s.slots).sum());
        assert!(r.min_up_frac <= r.mean_up_frac + 1e-12);
        // Telemetry is off by default: no per-session or rolled-up counters.
        assert!(a.sessions.iter().all(|s| s.telemetry.is_none()));
        assert!(r.telemetry.is_none());
    }

    /// Satellite: the streaming rollup accumulator. `rollup()` must match a
    /// hand-written single fold bit-for-bit, chunked `merge` must agree on
    /// every counter (floats re-associate, so those compare approximately),
    /// and `run_fleet_rollup` (which never materializes the report vector)
    /// must be bit-identical to `run_fleet(..).rollup()`.
    #[test]
    fn rollup_streaming_merge_matches_manual_fold() {
        let units = crate::multi_tx::tests::two_units(911);
        let cfg = FleetConfig {
            n_sessions: 6,
            duration_s: 0.3,
            seed: 42,
            collect_telemetry: true,
            ..Default::default()
        };
        let summary = run_fleet(&units, &cfg);
        let direct = summary.rollup();

        // Manual fold, the historical implementation.
        let n = summary.sessions.len();
        let mut mean_up = 0.0;
        let mut mean_sig = 0.0;
        let mut min_up = f64::INFINITY;
        let mut sum_goodput = 0.0;
        let mut handovers = 0u64;
        let mut slots = 0usize;
        for s in &summary.sessions {
            slots += s.slots;
            mean_up += s.up_frac;
            mean_sig += s.signal_frac;
            min_up = min_up.min(s.up_frac);
            sum_goodput += s.mean_goodput_gbps;
            handovers += s.handovers;
        }
        mean_up /= n as f64;
        mean_sig /= n as f64;
        assert_eq!(direct.total_slots, slots);
        assert_eq!(direct.mean_up_frac.to_bits(), mean_up.to_bits());
        assert_eq!(direct.mean_signal_frac.to_bits(), mean_sig.to_bits());
        assert_eq!(direct.min_up_frac.to_bits(), min_up.to_bits());
        assert_eq!(direct.sum_goodput_gbps.to_bits(), sum_goodput.to_bits());
        assert_eq!(direct.total_handovers, handovers);

        // Chunked merge: counters exact, float sums re-associate.
        let mut a = FleetRollupAcc::new();
        let mut b = FleetRollupAcc::new();
        for s in &summary.sessions[..3] {
            a.absorb(s);
        }
        for s in &summary.sessions[3..] {
            b.absorb(s);
        }
        a.merge(&b);
        let merged = a.finish();
        assert_eq!(merged.n_sessions, direct.n_sessions);
        assert_eq!(merged.total_slots, direct.total_slots);
        assert_eq!(merged.total_handovers, direct.total_handovers);
        assert_eq!(merged.total_outages, direct.total_outages);
        assert_eq!(merged.ctrl_sent, direct.ctrl_sent);
        assert_eq!(merged.min_up_frac.to_bits(), direct.min_up_frac.to_bits());
        assert!((merged.mean_up_frac - direct.mean_up_frac).abs() < 1e-12);
        assert!((merged.sum_goodput_gbps - direct.sum_goodput_gbps).abs() < 1e-9);
        let (mt, dt) = (merged.telemetry.unwrap(), direct.telemetry.unwrap());
        assert_eq!(mt.events.slots, dt.events.slots);
        assert_eq!(mt.events.handovers, dt.events.handovers);

        // Streaming driver: same absorb order as rollup(), so bit-identical.
        let streamed = run_fleet_rollup(&units, &cfg);
        assert_eq!(streamed.total_slots, direct.total_slots);
        assert_eq!(
            streamed.mean_up_frac.to_bits(),
            direct.mean_up_frac.to_bits()
        );
        assert_eq!(
            streamed.sum_goodput_gbps.to_bits(),
            direct.sum_goodput_gbps.to_bits()
        );
        assert_eq!(streamed.total_handovers, direct.total_handovers);
    }

    use crate::control::FaultPlan;
    use crate::telemetry::JsonlSink;
    use cyclops_vrh::motion::StaticPose;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A sink that only counts records, observable from outside the session.
    #[derive(Debug)]
    struct CountingSink(Arc<AtomicU64>);
    impl TelemetrySink for CountingSink {
        fn record(&mut self, _ev: &TelemetryEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn park_pose() -> Pose {
        Pose::translation(v3(0.0, 0.0, 1.75))
    }

    /// Single-TX chaos session (ARQ + DR + re-acq under the stress fault
    /// plan) over one commissioned unit, with the given telemetry layer.
    fn chaos_session(tele: Telemetry) -> LinkSession<StaticPose, SingleTx> {
        let unit = crate::multi_tx::tests::two_units(912).remove(0);
        let mut cfg = EngineConfig::default();
        cfg.tracker.drift_sigma_per_sqrt_s = 1e-3;
        cfg.control = Some(ControlPlaneConfig::hardened(FaultPlan::stress(17)));
        LinkSession::builder(StaticPose(park_pose()))
            .deployment(unit.dep, unit.ctl)
            .config(cfg)
            .first_report(FirstReport::AfterPeriod)
            .telemetry(tele)
            .build()
            .expect("valid chaos config")
    }

    fn assert_streams_identical(a: &[EngineSlot], b: &[EngineSlot]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.t.to_bits(), y.t.to_bits());
            assert_eq!(x.active, y.active);
            assert_eq!(x.los, y.los);
            assert_eq!(x.power_dbm.to_bits(), y.power_dbm.to_bits());
            assert_eq!(x.link_up, y.link_up);
            assert_eq!(x.rf_active, y.rf_active);
            assert_eq!(x.goodput_gbps.to_bits(), y.goodput_gbps.to_bits());
            assert_eq!(x.lin_speed.to_bits(), y.lin_speed.to_bits());
            assert_eq!(x.ang_speed.to_bits(), y.ang_speed.to_bits());
        }
    }

    #[test]
    fn telemetry_sinks_do_not_perturb_the_slot_stream() {
        // The determinism contract of the telemetry layer: the EngineSlot
        // stream is bit-identical with telemetry disabled, with counters,
        // with a JSONL sink, and with an arbitrary custom sink.
        let run = |tele: Telemetry| {
            let mut s = chaos_session(tele);
            let recs = s.run(1.0);
            let counters = s.telemetry().copied();
            (recs, counters)
        };
        let (off, c_off) = run(Telemetry::off());
        let (counted, c_on) = run(Telemetry::counters());
        assert!(c_off.is_none());
        let jsonl_path = std::env::temp_dir().join("cyclops_engine_tele_identity.jsonl");
        let sink = JsonlSink::create(&jsonl_path).expect("create jsonl");
        let (jsonl, c_jsonl) = run(Telemetry::with_sink_and_counters(Box::new(sink)));
        let n_events = Arc::new(AtomicU64::new(0));
        let (custom, _) = run(Telemetry::with_sink(Box::new(CountingSink(
            n_events.clone(),
        ))));
        assert_streams_identical(&off, &counted);
        assert_streams_identical(&off, &jsonl);
        assert_streams_identical(&off, &custom);
        // Counters aggregate the same stream regardless of the sink.
        let c_on = c_on.expect("counters attached");
        assert_eq!(Some(c_on), c_jsonl);
        assert_eq!(c_on.events.slots as usize, off.len());
        assert!(c_on.events.ctrl_sent > 0, "{:?}", c_on.events);
        assert!(c_on.events.ctrl_delivered > 0, "{:?}", c_on.events);
        assert!(c_on.events.tp_commands > 0, "{:?}", c_on.events);
        // One JSONL line per recorded event.
        let body = std::fs::read_to_string(&jsonl_path).expect("read jsonl");
        let _ = std::fs::remove_file(&jsonl_path);
        assert_eq!(
            body.lines().count() as u64,
            n_events.load(Ordering::Relaxed)
        );
        assert!(body.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn multi_tx_handover_telemetry_counts_events() {
        // The occlusion-handover workload under counters: handover, SFP
        // down/up and outage-histogram events must land, and the stream must
        // stay bit-identical to the uninstrumented run.
        let units = crate::multi_tx::tests::two_units(902);
        let tx0 = units[0].dep.tx_world_params().q2;
        let rx = v3(0.0, 0.0, 1.75);
        let occ = Occluder::new(tx0.lerp(rx, 0.5), 0.12, 0.0, 1);
        let run = |tele: Telemetry| {
            let mut s = LinkSession::builder(StaticPose(Pose::translation(rx)))
                .units(units.clone())
                .occluder(occ.clone())
                .selector(DarkDebounce::new(0.03))
                .config(EngineConfig::multi_tx(TrackerConfig::default()))
                .first_report(FirstReport::AtZero)
                .telemetry(tele)
                .build()
                .expect("valid multi-TX config");
            let recs = s.run(4.0);
            let counters = s.telemetry().copied();
            (recs, counters)
        };
        let (off, _) = run(Telemetry::off());
        let (counted, c) = run(Telemetry::counters());
        assert_streams_identical(&off, &counted);
        let c = c.expect("counters attached");
        assert_eq!(c.events.slots as usize, off.len());
        assert!(c.events.handovers >= 1, "{:?}", c.events);
        assert!(c.events.sfp_downs >= 1, "{:?}", c.events);
        assert!(c.events.sfp_ups >= 1, "{:?}", c.events);
        assert!(c.outage_s.samples() >= 1, "outage histogram must fill");
    }

    #[test]
    fn empty_environment_is_bit_identical_to_none() {
        // Builder contract: an empty Environment is stored as None, and a
        // density-0 fog stage attenuates nothing — both must leave the slot
        // stream bit-identical to a session built without an environment.
        let run = |env: Option<crate::channel::Environment>| {
            let unit = crate::multi_tx::tests::two_units(913).remove(0);
            let mut b = LinkSession::builder(StaticPose(park_pose()))
                .deployment(unit.dep, unit.ctl)
                .config(EngineConfig::default());
            if let Some(env) = env {
                b = b.environment(env);
            }
            b.build().expect("valid config").run(0.5)
        };
        let base = run(None);
        assert_streams_identical(&base, &run(Some(crate::channel::Environment::new())));
        let zero_fog = crate::channel::Environment::new()
            .stage(crate::channel::FogStage::from_density(0.0, 1550.0).expect("valid density"));
        assert_streams_identical(&base, &run(Some(zero_fog)));
    }

    #[test]
    fn fog_environment_attenuates_power() {
        let run = |env: Option<crate::channel::Environment>| {
            let unit = crate::multi_tx::tests::two_units(913).remove(0);
            let mut b = LinkSession::builder(StaticPose(park_pose()))
                .deployment(unit.dep, unit.ctl)
                .config(EngineConfig::default());
            if let Some(env) = env {
                b = b.environment(env);
            }
            b.build().expect("valid config").run(0.5)
        };
        let clean = run(None);
        let fog = crate::channel::Environment::new()
            .stage(crate::channel::FogStage::from_density(0.8, 1550.0).expect("valid density"));
        let foggy = run(Some(fog.clone()));
        // Dense fog over the paper's 1.75 m path: every slot loses the same
        // static Beer–Lambert amount.
        let att = {
            let mut probe = fog.clone();
            probe.attenuation_db(0.0, 1.75)
        };
        assert!(att > 0.0, "dense fog must attenuate: {att}");
        for (a, b) in clean.iter().zip(&foggy) {
            assert!(
                b.power_dbm <= a.power_dbm - att + 1e-9,
                "fog slot {} vs clean {}",
                b.power_dbm,
                a.power_dbm
            );
        }
    }

    #[test]
    fn fleet_rollup_merges_session_telemetry() {
        let units = crate::multi_tx::tests::two_units(911);
        let cfg = FleetConfig::builder()
            .n_sessions(3)
            .duration_s(0.4)
            .seed(77)
            .collect_telemetry(true)
            .build()
            .expect("valid fleet config");
        let s = run_fleet(&units, &cfg);
        assert!(s.sessions.iter().all(|r| r.telemetry.is_some()));
        let r = s.rollup();
        let t = r.telemetry.expect("telemetry collected");
        assert_eq!(t.events.sessions, 3);
        assert_eq!(t.events.slots, r.total_slots as u64);
        // The roll-up is exactly the merge of the per-session aggregates.
        let mut manual = SessionTelemetry::default();
        for rep in &s.sessions {
            manual.merge(rep.telemetry.as_ref().unwrap());
        }
        assert_eq!(manual, t);
    }

    #[test]
    fn clear_inflight_resets_all_per_unit_state() {
        // Regression for the handover counter sweep: an exhausted spiral
        // budget (or stale DR state) on the old unit must not leak into the
        // new unit after a handover.
        let mut tp = TpPolicy::default();
        tp.pending.push_back((1.0, [0.1; 4]));
        tp.deliveries.push_back((0.5, park_pose()));
        tp.last_delivery_arrival = Some(0.6);
        tp.last_dr_t = 0.7;
        tp.spiral = Some(ReacqSpiral::new([0.0; 4], 0.02, 100));
        tp.spiral_exhausted = true;
        tp.signal_lost_since = Some(0.2);
        tp.clear_inflight();
        assert!(tp.pending.is_empty());
        assert!(tp.deliveries.is_empty());
        assert_eq!(tp.last_delivery_arrival, None);
        assert_eq!(tp.last_dr_t, 0.0);
        assert!(tp.spiral.is_none());
        assert!(!tp.spiral_exhausted, "exhausted budget must not carry over");
        assert_eq!(tp.signal_lost_since, None);
    }

    #[test]
    fn builders_reject_invalid_configs() {
        assert_eq!(EngineConfig::default().validate(), Ok(()));
        let c = EngineConfig {
            slot_s: 0.0,
            ..EngineConfig::default()
        };
        assert_eq!(c.validate(), Err(EngineConfigError::InvalidSlot));
        let c = EngineConfig {
            slot_s: f64::NAN,
            ..EngineConfig::default()
        };
        assert_eq!(c.validate(), Err(EngineConfigError::InvalidSlot));
        // Goodput accounting is on in the default profile, so zero-size
        // frames must be rejected.
        let c = EngineConfig {
            frame_bits: 0,
            ..EngineConfig::default()
        };
        assert_eq!(c.validate(), Err(EngineConfigError::ZeroFrameBits));
        let mut c = EngineConfig::default();
        c.tracker.late_prob = 1.5;
        assert!(matches!(
            c.validate(),
            Err(EngineConfigError::InvalidTracker(_))
        ));
        let c = EngineConfig {
            control: Some(ControlPlaneConfig::hardened(FaultPlan {
                loss_prob: -0.1,
                ..FaultPlan::clean(1)
            })),
            ..EngineConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(EngineConfigError::InvalidControl(_))
        ));
        // A builder with no units fails before validation even matters.
        assert_eq!(
            LinkSession::builder(StaticPose(park_pose())).build().err(),
            Some(EngineConfigError::NoUnits)
        );
        // Fleet-level validation.
        assert!(matches!(
            FleetConfig::builder().n_sessions(0).build(),
            Err(EngineConfigError::InvalidFleet(_))
        ));
        assert!(matches!(
            FleetConfig::builder().duration_s(0.0).build(),
            Err(EngineConfigError::InvalidFleet(_))
        ));
        // Errors render human-readable messages.
        assert!(!EngineConfigError::NoUnits.to_string().is_empty());
        assert!(!EngineConfigError::InvalidFleet("x").to_string().is_empty());
    }

    // -- NaN-safe selector comparisons --------------------------------------

    #[test]
    fn selectors_survive_nan_margins_from_degenerate_geometry() {
        // Regression: a pose degenerating to NaN (rx collapsing onto a TX,
        // an unnormalizable direction) used to reach the selectors'
        // `partial_cmp().unwrap()` and panic. `total_cmp` sorts NaN above
        // +inf, so a NaN candidate loses every min-scan and the comparison
        // is total.
        let nan = f64::NAN;
        let txs = [v3(0.0, 0.0, 3.0), v3(nan, nan, nan), v3(2.0, 0.0, 3.0)];
        let ctx = SelectCtx {
            active: 0,
            signal: false,
            slot_s: 1.0, // one slot clears any debounce
            rx_pos: v3(0.1, 0.0, 1.75),
            tx_positions: &txs,
            occluders: &[],
        };
        let mut dd = DarkDebounce::new(0.0);
        // The NaN-distance unit must lose to the finite sibling.
        assert_eq!(dd.on_slot(&ctx), Some(2));

        // NaN rx makes *every* distance NaN: the scan must stay total
        // (returning some candidate) rather than panic.
        let ctx = SelectCtx {
            rx_pos: v3(nan, 0.0, 0.0),
            ..ctx
        };
        let mut dd = DarkDebounce::new(0.0);
        assert!(dd.on_slot(&ctx).is_some());

        // MarginSelector: the `>= 0` filter drops NaN margins and the
        // max-scan itself is NaN-proof.
        let mut ms = MarginSelector::new(0.0);
        let (up, active) = ms.step(0, 3, |i| [nan, 1.0, 3.0][i], 1e-3);
        assert!(!up);
        assert_eq!(active, 2);
        // All margins NaN: nothing usable, stay put, no panic.
        let mut ms = MarginSelector::new(0.0);
        assert_eq!(ms.step(1, 3, |_| nan, 1e-3), (false, 1));
        // Greedy-upgrade path with a NaN sibling in the pool.
        let mut ms = MarginSelector::new(0.0);
        ms.hysteresis_db = Some(1.0);
        assert_eq!(ms.step(1, 3, |i| [nan, 1.0, 3.0][i], 1e-3), (false, 2));
    }

    // -- Hybrid FSO/RF fallback ---------------------------------------------

    #[test]
    fn link_policy_debounces_failover_and_holds_failback() {
        let slot = 1e-3;
        let mut p = LinkPolicy::new(5e-3, 0.25);
        // A 4 ms dark blip stays below the failover delay.
        for _ in 0..4 {
            assert!(!p.step(false, slot));
        }
        assert!(!p.step(true, slot));
        assert_eq!(p.n_failovers(), 0);
        // 5 continuous dark ms fail over; the failover slot itself is RF.
        for i in 0..5 {
            assert_eq!(p.step(false, slot), i == 4, "slot {i}");
        }
        assert!(p.is_rf_active());
        assert_eq!(p.n_failovers(), 1);
        // FSO back up: traffic stays on RF through the whole failback hold.
        for _ in 0..249 {
            assert!(p.step(true, slot));
        }
        assert!(!p.step(true, slot), "250 ms of hold completes the failback");
        assert_eq!(p.n_failbacks(), 1);
        // Episode = failover slot + 249 held slots (the failback slot
        // itself is back on FSO).
        assert!((p.last_rf_episode_s() - 0.250).abs() < 1e-9);
    }

    #[test]
    fn periodic_flapping_faster_than_failback_hold_never_fails_back() {
        // Mirror of sfp_state's
        // `periodic_flapping_faster_than_relink_never_relocks`: FSO up for
        // 100 ms then dark for one slot, forever. The up-hold resets on
        // every flicker before reaching the 250 ms failback hold, so the
        // session rides RF indefinitely — no residual credit across blips.
        let slot = 1e-3;
        let mut p = LinkPolicy::new(5e-3, 0.25);
        for _ in 0..5 {
            p.step(false, slot);
        }
        assert!(p.is_rf_active());
        for cycle in 0..50 {
            for _ in 0..100 {
                assert!(p.step(true, slot), "cycle {cycle}");
            }
            assert!(p.step(false, slot), "cycle {cycle}");
        }
        assert_eq!(p.n_failbacks(), 0);
        assert_eq!(p.n_failovers(), 1);
    }

    #[test]
    fn rf_stats_since_saturates_like_control_stats() {
        let a = RfStats {
            failovers: 3,
            failbacks: 2,
            rf_slots: 100,
        };
        let b = RfStats {
            failovers: 5,
            failbacks: 2,
            rf_slots: 140,
        };
        assert_eq!(
            b.since(&a),
            RfStats {
                failovers: 2,
                failbacks: 0,
                rf_slots: 40,
            }
        );
        // Swapped snapshots clamp to zero instead of wrapping.
        assert_eq!(a.since(&b), RfStats::default());
    }

    /// Occluded multi-TX session used by the fallback tests: the occluder
    /// sits on the unit-0 beam, forcing outages and a handover.
    fn occluded_session(fallback: FallbackPolicy) -> LinkSession<StaticPose, DarkDebounce> {
        let units = crate::multi_tx::tests::two_units(902);
        let tx0 = units[0].dep.tx_world_params().q2;
        let rx = v3(0.0, 0.0, 1.75);
        let occ = Occluder::new(tx0.lerp(rx, 0.5), 0.12, 0.0, 1);
        let mut cfg = EngineConfig::multi_tx(TrackerConfig::default());
        cfg.fallback = fallback;
        LinkSession::builder(StaticPose(Pose::translation(rx)))
            .units(units)
            .occluder(occ)
            .selector(DarkDebounce::new(0.03))
            .config(cfg)
            .first_report(FirstReport::AtZero)
            .telemetry(Telemetry::counters())
            .build()
            .expect("valid multi-TX config")
    }

    #[test]
    fn fallback_preserves_fso_timeline_and_only_adds_delivery() {
        // The policy observes the SFP machine but never feeds it: the FSO
        // side of every slot must be bit-identical between Off and
        // RfOnOutage, and the fallback may only *add* delivering slots.
        let mut off_s = occluded_session(FallbackPolicy::Off);
        let mut on_s = occluded_session(FallbackPolicy::RfOnOutage);
        let off = off_s.run(4.0);
        let on = on_s.run(4.0);
        assert_eq!(off.len(), on.len());
        let mut n_rf = 0u64;
        for (x, y) in off.iter().zip(&on) {
            assert_eq!(x.t.to_bits(), y.t.to_bits());
            assert_eq!(x.active, y.active);
            assert_eq!(x.los, y.los);
            assert_eq!(x.power_dbm.to_bits(), y.power_dbm.to_bits());
            assert_eq!(x.lin_speed.to_bits(), y.lin_speed.to_bits());
            assert_eq!(x.ang_speed.to_bits(), y.ang_speed.to_bits());
            assert!(!x.rf_active, "Off must never ride RF");
            // Delivering is exactly "FSO up or RF carrying".
            assert_eq!(y.link_up, x.link_up || y.rf_active);
            // The multi-TX profile disables goodput accounting; the RF path
            // must respect that gate too.
            assert_eq!(y.goodput_gbps.to_bits(), 0.0f64.to_bits());
            n_rf += y.rf_active as u64;
        }
        assert!(n_rf > 0, "occlusion must trigger the fallback");
        // FSO outage accounting keeps its meaning under the fallback.
        let so = off_s.session_stats();
        let sn = on_s.session_stats();
        assert_eq!(so.n_outages, sn.n_outages);
        assert_eq!(so.outage_s.to_bits(), sn.outage_s.to_bits());
        assert_eq!(so.rf, RfStats::default());
        assert_eq!(sn.rf.rf_slots, n_rf);
        assert!(sn.rf.failovers >= 1, "{:?}", sn.rf);
        // Strictly more delivering slots with the fallback on.
        let ups = |v: &[EngineSlot]| v.iter().filter(|r| r.link_up).count();
        assert!(ups(&on) > ups(&off), "{} vs {}", ups(&on), ups(&off));
    }

    #[test]
    fn failover_survives_handover_and_lands_in_telemetry() {
        // RF fallback is session-level state (the radio is independent of
        // which ceiling unit serves FSO): a handover mid-outage must not
        // reset it. The occluded workload hands over while dark, so RF must
        // be active on some slot where the active unit just changed.
        let mut s = occluded_session(FallbackPolicy::RfOnOutage);
        let recs = s.run(4.0);
        let rf_through_handover = recs
            .windows(2)
            .any(|w| w[1].rf_active && w[1].active != w[0].active);
        assert!(rf_through_handover, "RF must persist across the handover");
        let stats = s.session_stats();
        let c = s.telemetry().copied().expect("counters attached");
        assert!(c.events.handovers >= 1, "{:?}", c.events);
        assert_eq!(c.events.rf_failovers, stats.rf.failovers);
        assert_eq!(c.events.rf_failbacks, stats.rf.failbacks);
        assert_eq!(c.events.rf_slots, stats.rf.rf_slots);
        // The policy view agrees with the stats.
        let p = s.rf_policy().expect("policy attached");
        assert_eq!(p.n_failovers(), stats.rf.failovers);
    }

    #[test]
    fn fleet_fallback_counts_rf_slots_and_never_hurts_availability() {
        let units = crate::multi_tx::tests::two_units(911);
        let tx0 = units[0].dep.tx_world_params().q2;
        let base = v3(0.0, 0.0, 1.75);
        let fleet = |fallback: FallbackPolicy| {
            let cfg = FleetConfig::builder()
                .n_sessions(4)
                .duration_s(1.5)
                .seed(424)
                .control(ControlPlaneConfig::hardened(FaultPlan::stress(5)))
                .occluder(Occluder::new(tx0.lerp(base, 0.5), 0.12, 0.4, 1))
                .fallback(fallback)
                .build()
                .expect("valid fleet config");
            run_fleet(&units, &cfg).rollup()
        };
        let off = fleet(FallbackPolicy::Off);
        let on = fleet(FallbackPolicy::RfOnOutage);
        // Off: the RF aggregates stay identically zero.
        assert_eq!(off.mean_rf_frac, 0.0);
        assert_eq!(off.total_failovers, 0);
        assert_eq!(off.total_rf_slots, 0);
        assert_eq!(off.rf_delivered_gb, 0.0);
        // On: the hostile fleet actually exercises the fallback, and RF
        // slots can only add to availability and goodput.
        assert!(on.total_failovers >= 1);
        assert!(on.total_rf_slots >= on.total_failovers);
        assert!(on.mean_rf_frac > 0.0);
        assert!(on.rf_delivered_gb > 0.0, "fleet profile accounts goodput");
        assert!(
            on.mean_up_frac > off.mean_up_frac,
            "{} vs {}",
            on.mean_up_frac,
            off.mean_up_frac
        );
        assert!(on.sum_goodput_gbps >= off.sum_goodput_gbps);
    }
}
