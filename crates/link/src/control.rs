//! Reliable control channel: ARQ over a faulty report link, plus the
//! deterministic fault-injection layer behind the chaos suite.
//!
//! The paper assumes the RF side channel carrying VRH-T reports to the TX is
//! reliable ("< 1 ms" latency, §5.2) — our own ablations show that 5 %
//! report loss already collapses tolerated speeds. This module drops that
//! assumption:
//!
//! * [`FaultPlan`] — a deterministic channel-fault model: i.i.d. and bursty
//!   (Gilbert–Elliott) report loss, delay jitter and spikes, duplicated and
//!   reordered frames, plus scheduled SFP flaps. Every stochastic decision
//!   is a pure function of `mix64(mix64(seed, stream), counter)`, the same
//!   per-item keying the parallel substrate uses, so identical seeds give
//!   bit-identical runs at any thread count.
//! * [`ControlLink`] — a sequence-numbered, deduplicating ACK/NACK ARQ
//!   sender/receiver pair over that channel, with per-report retransmit
//!   timeouts and capped exponential backoff. Stale frames (older than the
//!   newest delivered report) are dropped at the receiver: a retransmitted
//!   pose from 30 ms ago must not steer the beam backwards.
//! * [`ControlStats`] — per-session counters (retries, losses, duplicates,
//!   abandons) surfaced through the simulator's session stats and the perf
//!   snapshot.

use cyclops_par::mix64;

/// Decision-stream identifiers: each fault dimension draws from its own
/// `mix64` stream so changing one probability never perturbs another's
/// outcomes (the same discipline the trainers use for per-item RNGs).
mod stream {
    pub const LOSS: u64 = 0x101;
    pub const BURST: u64 = 0x102;
    pub const DELAY: u64 = 0x103;
    pub const DUP: u64 = 0x104;
    pub const REORDER: u64 = 0x105;
    pub const JITTER: u64 = 0x106;
    pub const DUP_JITTER: u64 = 0x107;
    pub const ACK_LOSS: u64 = 0x108;
    pub const ACK_JITTER: u64 = 0x109;
}

/// Maps a hash to a uniform in `[0, 1)` (53 mantissa bits).
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic schedule of forced SFP signal losses ("flaps"): the
/// optical signal is forced absent for `down_s` seconds every `period_s`,
/// starting at `first_s`. Deterministic by construction — no seed needed —
/// so outage timing is identical across runs and thread counts.
#[derive(Debug, Clone, Copy)]
pub struct FlapSchedule {
    /// Time of the first flap (seconds).
    pub first_s: f64,
    /// Flap repetition period (seconds).
    pub period_s: f64,
    /// Forced-down duration per flap (seconds).
    pub down_s: f64,
}

impl FlapSchedule {
    /// Whether the signal is forced down at time `t`.
    pub fn forced_down(&self, t: f64) -> bool {
        if t < self.first_s || self.period_s <= 0.0 {
            return false;
        }
        (t - self.first_s) % self.period_s < self.down_s
    }
}

/// Deterministic fault model for the report channel. All probabilities are
/// per frame transmission (original or retransmit).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the decision streams; two plans with the same seed and the
    /// same call sequence make identical decisions.
    pub seed: u64,
    /// I.i.d. loss probability outside bursts.
    pub loss_prob: f64,
    /// Probability of entering a loss burst (good → bad), per frame.
    pub burst_enter_prob: f64,
    /// Probability of leaving a loss burst (bad → good), per frame.
    pub burst_exit_prob: f64,
    /// Loss probability while inside a burst.
    pub burst_loss_prob: f64,
    /// Probability of a delay spike on a surviving frame.
    pub delay_spike_prob: f64,
    /// Added delay of a spike (seconds).
    pub delay_spike_s: f64,
    /// Uniform extra delay in `[0, jitter_s)` on every frame (seconds).
    pub jitter_s: f64,
    /// Probability a surviving frame is duplicated in the channel.
    pub dup_prob: f64,
    /// Probability a surviving frame is held back (reordered).
    pub reorder_prob: f64,
    /// Hold-back delay of a reordered frame (seconds).
    pub reorder_delay_s: f64,
    /// Optional scheduled SFP flaps (applied by the simulator, not the
    /// control link itself).
    pub flap: Option<FlapSchedule>,
}

impl FaultPlan {
    /// A fault-free plan (the paper's reliable-channel assumption).
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            loss_prob: 0.0,
            burst_enter_prob: 0.0,
            burst_exit_prob: 1.0,
            burst_loss_prob: 0.0,
            delay_spike_prob: 0.0,
            delay_spike_s: 0.0,
            jitter_s: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay_s: 0.0,
            flap: None,
        }
    }

    /// I.i.d. loss at probability `p`, nothing else.
    pub fn iid_loss(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            loss_prob: p,
            ..FaultPlan::clean(seed)
        }
    }

    /// The chaos-suite stress plan: bursty loss, jitter, spikes, dups and
    /// reorders all at once.
    pub fn stress(seed: u64) -> FaultPlan {
        FaultPlan {
            loss_prob: 0.05,
            burst_enter_prob: 0.01,
            burst_exit_prob: 0.25,
            burst_loss_prob: 0.9,
            delay_spike_prob: 0.02,
            delay_spike_s: 0.015,
            jitter_s: 0.8e-3,
            dup_prob: 0.03,
            reorder_prob: 0.03,
            reorder_delay_s: 0.004,
            ..FaultPlan::clean(seed)
        }
    }

    fn roll(&self, stream: u64, k: u64) -> f64 {
        unit(mix64(mix64(self.seed, stream), k))
    }
}

/// ARQ (retransmission) configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArqConfig {
    /// Initial retransmit timeout after an unacknowledged send (seconds).
    pub timeout_s: f64,
    /// Timeout multiplier per retry (capped exponential backoff).
    pub backoff: f64,
    /// Timeout cap (seconds).
    pub max_timeout_s: f64,
    /// Retransmissions allowed per report before the sender gives up. Pose
    /// reports go stale within a few periods, so this stays small.
    pub max_retries: u32,
}

impl Default for ArqConfig {
    /// Tuned to the 0.5 ms one-way channel latency and the 12–13 ms report
    /// period: the timeout leaves 50 % headroom over the 1 ms ACK RTT, so a
    /// first retransmit lands ~2 ms after the original send — the residual
    /// steering staleness it adds stays small against the period — and a
    /// report is abandoned once fresher data has certainly superseded it.
    fn default() -> Self {
        ArqConfig {
            timeout_s: 1.5e-3,
            backoff: 2.0,
            max_timeout_s: 20.0e-3,
            max_retries: 4,
        }
    }
}

/// Per-session control-channel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControlStats {
    /// Reports submitted by the sender.
    pub sent: u64,
    /// Reports delivered (in order, once each) to the application.
    pub delivered: u64,
    /// Retransmissions issued.
    pub retransmits: u64,
    /// Frame transmissions lost in the channel (originals + retransmits).
    pub channel_losses: u64,
    /// Duplicate frames injected by the channel.
    pub dup_frames: u64,
    /// Frames dropped at the receiver as duplicate or stale (older than the
    /// newest delivered report).
    pub stale_drops: u64,
    /// ACKs lost on the reverse path.
    pub acks_lost: u64,
    /// Reports abandoned after `max_retries` unacknowledged attempts.
    pub gave_up: u64,
}

impl ControlStats {
    /// Field-wise difference since an earlier snapshot (saturating, so a
    /// stale snapshot can never underflow). The engine's telemetry layer
    /// uses this to synthesize per-slot retransmit/drop events from the
    /// cumulative counters.
    pub fn since(&self, earlier: &ControlStats) -> ControlStats {
        ControlStats {
            sent: self.sent.saturating_sub(earlier.sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            channel_losses: self.channel_losses.saturating_sub(earlier.channel_losses),
            dup_frames: self.dup_frames.saturating_sub(earlier.dup_frames),
            stale_drops: self.stale_drops.saturating_sub(earlier.stale_drops),
            acks_lost: self.acks_lost.saturating_sub(earlier.acks_lost),
            gave_up: self.gave_up.saturating_sub(earlier.gave_up),
        }
    }
}

/// Number of slots in a run of `run_s` seconds at `slot_s` per slot,
/// rounded to the nearest integer.
///
/// Naive truncation (`(run_s / slot_s) as usize`) silently drops the final
/// slot whenever the quotient lands just below an integer — e.g.
/// `0.3 / 1e-3` is `299.999…` in binary floating point, so a 300-slot run
/// would poll only 299 slots. The engine's slot loop rounds
/// ([`crate::engine::LinkSession::run_each`]); drivers stepping a
/// [`ControlLink`] by hand should use this for the same contract.
pub fn slots_in(run_s: f64, slot_s: f64) -> usize {
    (run_s / slot_s).round() as usize
}

#[derive(Debug, Clone, Copy)]
struct InFlight<T> {
    arrive_t: f64,
    seq: u64,
    payload: T,
}

#[derive(Debug, Clone, Copy)]
struct Outstanding<T> {
    seq: u64,
    payload: T,
    next_retx_t: f64,
    timeout_s: f64,
    retries: u32,
}

/// A sequence-numbered sender/receiver pair over a [`FaultPlan`] channel,
/// optionally running ACK/NACK ARQ. Drive it with [`ControlLink::send`] at
/// report times and [`ControlLink::poll`] once per simulation slot.
#[derive(Debug, Clone)]
pub struct ControlLink<T> {
    /// Channel fault model.
    pub plan: FaultPlan,
    /// ARQ configuration; `None` disables retransmission (fire-and-forget,
    /// the legacy lossy channel with richer fault modes).
    pub arq: Option<ArqConfig>,
    /// Base one-way latency of the channel, both directions (seconds).
    pub base_latency_s: f64,
    next_seq: u64,
    frame_counter: u64,
    ack_counter: u64,
    in_burst: bool,
    data_in_flight: Vec<InFlight<T>>,
    acks_in_flight: Vec<(f64, u64)>,
    outstanding: Vec<Outstanding<T>>,
    highest_delivered: Option<u64>,
    stats: ControlStats,
}

impl<T: Copy> ControlLink<T> {
    /// Creates a link with the given fault model and base one-way latency.
    pub fn new(plan: FaultPlan, arq: Option<ArqConfig>, base_latency_s: f64) -> ControlLink<T> {
        ControlLink {
            plan,
            arq,
            base_latency_s,
            next_seq: 0,
            frame_counter: 0,
            ack_counter: 0,
            in_burst: false,
            data_in_flight: Vec::new(),
            acks_in_flight: Vec::new(),
            outstanding: Vec::new(),
            highest_delivered: None,
            stats: ControlStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Submits a report at time `t`; it is transmitted immediately and, with
    /// ARQ enabled, tracked until acknowledged or abandoned.
    pub fn send(&mut self, t: f64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.sent += 1;
        self.transmit(t, seq, payload);
        if let Some(arq) = self.arq {
            self.outstanding.push(Outstanding {
                seq,
                payload,
                next_retx_t: t + arq.timeout_s,
                timeout_s: arq.timeout_s,
                retries: 0,
            });
        }
    }

    /// One frame transmission through the fault model.
    fn transmit(&mut self, t: f64, seq: u64, payload: T) {
        let k = self.frame_counter;
        self.frame_counter += 1;
        // Gilbert–Elliott burst state; the transition draw happens every
        // frame so the state sequence depends only on the frame counter.
        let b = self.plan.roll(stream::BURST, k);
        if self.in_burst {
            if b < self.plan.burst_exit_prob {
                self.in_burst = false;
            }
        } else if b < self.plan.burst_enter_prob {
            self.in_burst = true;
        }
        let p_loss = if self.in_burst {
            self.plan.burst_loss_prob
        } else {
            self.plan.loss_prob
        };
        if p_loss > 0.0 && self.plan.roll(stream::LOSS, k) < p_loss {
            self.stats.channel_losses += 1;
            return;
        }
        let mut delay =
            self.base_latency_s + self.plan.jitter_s * self.plan.roll(stream::JITTER, k);
        if self.plan.delay_spike_prob > 0.0
            && self.plan.roll(stream::DELAY, k) < self.plan.delay_spike_prob
        {
            delay += self.plan.delay_spike_s;
        }
        if self.plan.reorder_prob > 0.0
            && self.plan.roll(stream::REORDER, k) < self.plan.reorder_prob
        {
            delay += self.plan.reorder_delay_s;
        }
        self.data_in_flight.push(InFlight {
            arrive_t: t + delay,
            seq,
            payload,
        });
        if self.plan.dup_prob > 0.0 && self.plan.roll(stream::DUP, k) < self.plan.dup_prob {
            self.stats.dup_frames += 1;
            let extra =
                self.base_latency_s + self.plan.jitter_s * self.plan.roll(stream::DUP_JITTER, k);
            self.data_in_flight.push(InFlight {
                arrive_t: t + delay + extra,
                seq,
                payload,
            });
        }
    }

    /// Advances the channel to time `t`: processes ACK arrivals, issues due
    /// retransmissions, and returns the reports delivered to the receiver by
    /// `t` as `(arrival_time, payload)`, in arrival order. Duplicates and
    /// stale (out-of-order) frames are filtered here.
    pub fn poll(&mut self, t: f64) -> Vec<(f64, T)> {
        // Idle fast path: between report times all three queues are usually
        // empty, and every step below is then a no-op. Skip the scans (and
        // the ARQ block) entirely — `Vec::new()` does not allocate, so the
        // common once-per-slot poll is a three-load check.
        if self.data_in_flight.is_empty()
            && self.acks_in_flight.is_empty()
            && self.outstanding.is_empty()
        {
            return Vec::new();
        }
        // 1. ACKs that reached the sender clear their outstanding entry.
        let mut i = 0;
        while i < self.acks_in_flight.len() {
            if self.acks_in_flight[i].0 <= t {
                let (_, seq) = self.acks_in_flight.swap_remove(i);
                self.outstanding.retain(|o| o.seq != seq);
            } else {
                i += 1;
            }
        }

        // 2. Due retransmissions (ARQ only).
        if let Some(arq) = self.arq {
            let mut due: Vec<Outstanding<T>> = Vec::new();
            let mut i = 0;
            while i < self.outstanding.len() {
                if self.outstanding[i].next_retx_t <= t {
                    due.push(self.outstanding.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            // Deterministic order regardless of swap_remove shuffling.
            due.sort_by_key(|o| o.seq);
            for mut o in due {
                if o.retries >= arq.max_retries {
                    self.stats.gave_up += 1;
                    continue;
                }
                o.retries += 1;
                self.stats.retransmits += 1;
                let send_t = o.next_retx_t;
                o.timeout_s = (o.timeout_s * arq.backoff).min(arq.max_timeout_s);
                o.next_retx_t = send_t + o.timeout_s;
                self.transmit(send_t, o.seq, o.payload);
                self.outstanding.push(o);
            }
        }

        // 3. Frame arrivals at the receiver, in arrival order.
        let mut ready: Vec<InFlight<T>> = Vec::new();
        let mut i = 0;
        while i < self.data_in_flight.len() {
            if self.data_in_flight[i].arrive_t <= t {
                ready.push(self.data_in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        ready.sort_by(|a, b| a.arrive_t.total_cmp(&b.arrive_t).then(a.seq.cmp(&b.seq)));

        let mut delivered = Vec::new();
        for f in ready {
            // Every received frame is acknowledged (even dups — the earlier
            // ACK may have been lost).
            if self.arq.is_some() {
                let ka = self.ack_counter;
                self.ack_counter += 1;
                if self.plan.loss_prob > 0.0
                    && self.plan.roll(stream::ACK_LOSS, ka) < self.plan.loss_prob
                {
                    self.stats.acks_lost += 1;
                } else {
                    let d = self.base_latency_s
                        + self.plan.jitter_s * self.plan.roll(stream::ACK_JITTER, ka);
                    self.acks_in_flight.push((f.arrive_t + d, f.seq));
                }
            }
            // Dedup + staleness: only ever deliver newer-than-anything-seen
            // reports; a late retransmit of an old pose must not win.
            if self.highest_delivered.is_some_and(|h| f.seq <= h) {
                self.stats.stale_drops += 1;
                continue;
            }
            self.highest_delivered = Some(f.seq);
            self.stats.delivered += 1;
            delivered.push((f.arrive_t, f.payload));
        }
        delivered
    }
}

/// Dead-reckoning configuration: when delivered reports go stale, the TP
/// extrapolates the pose at constant velocity and keeps steering rather than
/// letting the beam drift open-loop.
#[derive(Debug, Clone, Copy)]
pub struct DeadReckoningConfig {
    /// Reports older than this are considered stale (seconds).
    pub stale_after_s: f64,
    /// Minimum spacing between extrapolated commands (seconds) — matches
    /// the tracker cadence so DR never outruns the real report rate.
    pub interval_s: f64,
    /// Extrapolation horizon (seconds); beyond it the velocity estimate is
    /// useless and DR stops (bounded degradation, not divergence).
    pub max_horizon_s: f64,
    /// Minimum time baseline for the velocity estimate (seconds). Two
    /// consecutive reports are only ~12 ms apart, so differencing them
    /// amplifies tracker noise ~20× at the full extrapolation horizon;
    /// anchoring the difference on a report at least this much older keeps
    /// the amplification bounded (≈ horizon / baseline).
    pub min_baseline_s: f64,
}

impl Default for DeadReckoningConfig {
    fn default() -> Self {
        DeadReckoningConfig {
            stale_after_s: 0.02,
            interval_s: 0.012,
            max_horizon_s: 0.25,
            min_baseline_s: 0.06,
        }
    }
}

/// Re-acquisition configuration: after optical signal loss with no fresh
/// pose to point at, spiral the TX beam around the last good command to
/// recover signal early instead of waiting out the full SFP re-lock.
#[derive(Debug, Clone, Copy)]
pub struct ReacqConfig {
    /// Continuous signal-absence time that triggers the spiral (seconds).
    pub trigger_after_s: f64,
    /// Radial voltage step per spiral turn (volts).
    pub step_v: f64,
    /// Spiral step budget; exhausted means give up and restore the center.
    pub max_steps: usize,
    /// Required margin above receiver sensitivity (dB) before a probe point
    /// is accepted. Accepting a point *at* the sensitivity edge is a trap:
    /// any subsequent drift flickers the signal, resets the SFP's re-lock
    /// hold timer, and the link never comes back. The search only stops on
    /// solid signal.
    pub success_margin_db: f64,
}

impl Default for ReacqConfig {
    fn default() -> Self {
        ReacqConfig {
            trigger_after_s: 30.0e-3,
            step_v: 0.01,
            max_steps: 400,
            success_margin_db: 2.0,
        }
    }
}

/// Everything the simulator needs to run the reliable control plane.
#[derive(Debug, Clone, Copy)]
pub struct ControlPlaneConfig {
    /// Channel fault model (seeded).
    pub fault: FaultPlan,
    /// ARQ; `None` = fire-and-forget over the faulty channel.
    pub arq: Option<ArqConfig>,
    /// Dead reckoning; `None` = wait for the next delivered report.
    pub dead_reckoning: Option<DeadReckoningConfig>,
    /// Re-acquisition spiral; `None` = wait out the outage.
    pub reacq: Option<ReacqConfig>,
}

impl ControlPlaneConfig {
    /// Fault-free plane with ARQ + DR + re-acquisition enabled — the
    /// recommended production configuration.
    pub fn reliable(seed: u64) -> ControlPlaneConfig {
        ControlPlaneConfig {
            fault: FaultPlan::clean(seed),
            arq: Some(ArqConfig::default()),
            dead_reckoning: Some(DeadReckoningConfig::default()),
            reacq: Some(ReacqConfig::default()),
        }
    }

    /// The given fault plan with the full mitigation stack enabled.
    pub fn hardened(fault: FaultPlan) -> ControlPlaneConfig {
        ControlPlaneConfig {
            fault,
            arq: Some(ArqConfig::default()),
            dead_reckoning: Some(DeadReckoningConfig::default()),
            reacq: Some(ReacqConfig::default()),
        }
    }

    /// The given fault plan with every mitigation disabled (the ablation
    /// baseline: faults hit the raw channel).
    pub fn unprotected(fault: FaultPlan) -> ControlPlaneConfig {
        ControlPlaneConfig {
            fault,
            arq: None,
            dead_reckoning: None,
            reacq: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        plan: FaultPlan,
        arq: Option<ArqConfig>,
        n_reports: usize,
        period_s: f64,
        run_s: f64,
    ) -> (Vec<(f64, u64)>, ControlStats) {
        let mut link: ControlLink<u64> = ControlLink::new(plan, arq, 0.5e-3);
        let mut out = Vec::new();
        let slot = 1e-3;
        let n_slots = slots_in(run_s, slot);
        let mut sent = 0usize;
        for k in 0..n_slots {
            let t = (k + 1) as f64 * slot;
            while sent < n_reports && sent as f64 * period_s <= t {
                link.send(sent as f64 * period_s, sent as u64);
                sent += 1;
            }
            out.extend(link.poll(t));
        }
        (out, link.stats())
    }

    #[test]
    fn slots_in_does_not_truncate_the_final_slot() {
        // 0.35 / 1e-3 is 349.999… in binary floating point: truncation gave
        // 349 and silently dropped the run's final slot (same for 8.1 s).
        assert_eq!((0.35_f64 / 1e-3) as usize, 349, "the naive cast truncates");
        assert_eq!(slots_in(0.35, 1e-3), 350);
        assert_eq!((8.1_f64 / 1e-3) as usize, 8099, "the naive cast truncates");
        assert_eq!(slots_in(8.1, 1e-3), 8100);
        // Exact and near-exact quotients on both sides.
        assert_eq!(slots_in(2.0, 1e-3), 2000);
        assert_eq!(slots_in(6.0, 1e-3), 6000);
        assert_eq!(slots_in(0.0999999999, 1e-3), 100);
        assert_eq!(slots_in(0.1000000001, 1e-3), 100);
    }

    #[test]
    fn clean_channel_delivers_everything_in_order() {
        let (got, st) = drive(FaultPlan::clean(1), None, 50, 0.0125, 2.0);
        assert_eq!(got.len(), 50);
        for (i, (t, v)) in got.iter().enumerate() {
            assert_eq!(*v, i as u64);
            // Base latency only.
            assert!((t - (i as f64 * 0.0125 + 0.5e-3)).abs() < 1e-12);
        }
        assert_eq!(st.retransmits, 0);
        assert_eq!(st.channel_losses, 0);
    }

    #[test]
    fn lossy_channel_without_arq_drops_reports() {
        let (got, st) = drive(FaultPlan::iid_loss(2, 0.3), None, 400, 0.0125, 6.0);
        assert!(got.len() < 350, "delivered {}", got.len());
        assert!(st.channel_losses > 50, "{st:?}");
        // Deliveries stay in order.
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn arq_recovers_heavy_loss() {
        let plan = FaultPlan::iid_loss(3, 0.3);
        let (got, st) = drive(plan, Some(ArqConfig::default()), 400, 0.0125, 6.0);
        // ARQ recovers the vast majority; only back-to-back losses at the
        // very end of the run can still be missing.
        assert!(got.len() >= 390, "delivered {} of 400", got.len());
        assert!(st.retransmits > 50, "{st:?}");
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn duplicates_and_reorders_are_filtered() {
        let plan = FaultPlan {
            dup_prob: 0.5,
            reorder_prob: 0.3,
            reorder_delay_s: 0.03,
            ..FaultPlan::clean(4)
        };
        let (got, st) = drive(plan, Some(ArqConfig::default()), 300, 0.0125, 5.0);
        // Strictly increasing seqs, no dups delivered.
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1));
        assert!(st.dup_frames > 100, "{st:?}");
        assert!(st.stale_drops > 100, "{st:?}");
    }

    #[test]
    fn backoff_caps_and_sender_gives_up() {
        // A channel that loses everything: every report is retried exactly
        // max_retries times then abandoned.
        let plan = FaultPlan::iid_loss(5, 1.0);
        let arq = ArqConfig {
            timeout_s: 2e-3,
            backoff: 2.0,
            max_timeout_s: 8e-3,
            max_retries: 3,
        };
        let (got, st) = drive(plan, Some(arq), 10, 0.0125, 2.0);
        assert!(got.is_empty());
        assert_eq!(st.gave_up, 10);
        assert_eq!(st.retransmits, 30);
        // 1 original + 3 retries per report, all lost.
        assert_eq!(st.channel_losses, 40);
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let run = || {
            let (got, st) = drive(
                FaultPlan::stress(99),
                Some(ArqConfig::default()),
                300,
                0.0125,
                5.0,
            );
            (got, st)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(sa, sb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits());
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = drive(FaultPlan::iid_loss(7, 0.3), None, 300, 0.0125, 5.0);
        let (b, _) = drive(FaultPlan::iid_loss(8, 0.3), None, 300, 0.0125, 5.0);
        assert_ne!(
            a.iter().map(|x| x.1).collect::<Vec<_>>(),
            b.iter().map(|x| x.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn burst_loss_clusters() {
        // Pure burst model: long bad states with certain loss. Gaps in the
        // delivered sequence should be multi-report runs, not singles.
        let plan = FaultPlan {
            loss_prob: 0.0,
            burst_enter_prob: 0.03,
            burst_exit_prob: 0.15,
            burst_loss_prob: 1.0,
            ..FaultPlan::clean(11)
        };
        let (got, _) = drive(plan, None, 2000, 0.0125, 30.0);
        let seqs: Vec<u64> = got.iter().map(|x| x.1).collect();
        let mut run_lens = Vec::new();
        for w in seqs.windows(2) {
            if w[1] > w[0] + 1 {
                run_lens.push(w[1] - w[0] - 1);
            }
        }
        assert!(!run_lens.is_empty(), "bursts must cause losses");
        let max_run = run_lens.iter().max().copied().unwrap();
        assert!(max_run >= 3, "longest loss run {max_run} — not bursty");
    }

    #[test]
    fn flap_schedule_is_deterministic() {
        let f = FlapSchedule {
            first_s: 1.0,
            period_s: 5.0,
            down_s: 0.2,
        };
        assert!(!f.forced_down(0.5));
        assert!(f.forced_down(1.1));
        assert!(!f.forced_down(1.25));
        assert!(f.forced_down(6.05));
        assert!(!f.forced_down(5.9));
    }

    #[test]
    fn delay_spikes_delay_but_do_not_lose() {
        let plan = FaultPlan {
            delay_spike_prob: 1.0,
            delay_spike_s: 0.01,
            ..FaultPlan::clean(12)
        };
        let (got, st) = drive(plan, None, 50, 0.0125, 2.0);
        assert_eq!(got.len(), 50);
        assert_eq!(st.channel_losses, 0);
        for (i, (t, _)) in got.iter().enumerate() {
            let expect = i as f64 * 0.0125 + 0.5e-3 + 0.01;
            assert!((t - expect).abs() < 1e-12, "report {i} at {t}");
        }
    }
}
