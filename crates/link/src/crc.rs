//! CRC-32 (IEEE 802.3 polynomial), table-driven.

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

/// The 256-entry lookup table, computed at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (IEEE: init all-ones, final xor all-ones).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"cyclops fso link".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_transpositions() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
        assert_ne!(crc32(b"\x00\x01"), crc32(b"\x01\x00"));
    }
}
