//! **Viewport traffic + playout QoE** — the demand side of a fleet session.
//!
//! The fleet workloads used to assume a constant full-rate offered load:
//! every up-slot delivered `rate × slot` and goodput was the only rollup.
//! Real VR streaming is bursty — frames arrive on a display clock, keyframes
//! and viewport changes inflate them — and what the user feels is not mean
//! goodput but *stall time*: how long the playout buffer sat empty. This
//! module models that demand side deterministically (per-stream `mix64`
//! draws, no shared RNG) so the scheduled fleet can roll goodput up into a
//! QoE-style stall metric.
//!
//! Pipeline per session:
//!
//! ```text
//! FrameCursor (arrivals) ──> sender queue ──link slots──> FrameCursor
//!   fps, keyframes,           (backlog)      (granted &    (delivery) ──>
//!   viewport bursts                           link up)      playout buffer
//!                                                           ──> stall clock
//! ```
//!
//! Memory is O(1) per session: frame sizes are a pure function of
//! `(seed, frame index, burst state)`, so the arrival and delivery sides
//! each walk the same deterministic cursor instead of queueing per-frame
//! records.

use crate::control::unit;
use cyclops_par::mix64;

/// Configuration of the per-session viewport/frame traffic source.
///
/// Defaults model a 72 fps headset stream at ≈ 6.5 Gbps mean offered load
/// (83 Mbit base frames, a 2.5× keyframe every 24 frames, 5 %-per-frame
/// viewport changes bursting 6 frames at 2×) — heavy enough that a handful
/// of sessions oversubscribe one ~8.6 Gbps Cyclops TX.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Display/frame rate (frames per second).
    pub fps: f64,
    /// Nominal frame size (megabits).
    pub base_frame_mbit: f64,
    /// Every `keyframe_every`-th frame is a keyframe (0 disables).
    pub keyframe_every: u64,
    /// Keyframe size multiplier.
    pub keyframe_mult: f64,
    /// Per-frame probability of a viewport change (deterministic
    /// `mix64(seed, frame)` draw).
    pub viewport_switch_prob: f64,
    /// Frames inflated after a viewport change (fresh tiles streaming in).
    pub burst_frames: u64,
    /// Burst size multiplier.
    pub burst_mult: f64,
    /// Playout starts once this many frames are buffered.
    pub startup_frames: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            fps: 72.0,
            base_frame_mbit: 83.0,
            keyframe_every: 24,
            keyframe_mult: 2.5,
            viewport_switch_prob: 0.05,
            burst_frames: 6,
            burst_mult: 2.0,
            startup_frames: 2,
        }
    }
}

impl TrafficConfig {
    /// Validates the configuration (finite, positive rate and sizes,
    /// multipliers ≥ 1, probability in `[0, 1]`).
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err("fps must be finite and positive");
        }
        if !(self.base_frame_mbit.is_finite() && self.base_frame_mbit > 0.0) {
            return Err("base_frame_mbit must be finite and positive");
        }
        if !(self.keyframe_mult.is_finite() && self.keyframe_mult >= 1.0) {
            return Err("keyframe_mult must be finite and >= 1");
        }
        if !(self.burst_mult.is_finite() && self.burst_mult >= 1.0) {
            return Err("burst_mult must be finite and >= 1");
        }
        if !(0.0..=1.0).contains(&self.viewport_switch_prob) {
            return Err("viewport_switch_prob must be in [0, 1]");
        }
        Ok(())
    }

    /// Approximate mean offered load (Gbps): base rate × the expected
    /// keyframe and viewport-burst inflation.
    pub fn mean_offered_gbps(&self) -> f64 {
        let kf = if self.keyframe_every > 0 {
            1.0 + (self.keyframe_mult - 1.0) / self.keyframe_every as f64
        } else {
            1.0
        };
        let burst = 1.0
            + (self.burst_mult - 1.0)
                * (self.viewport_switch_prob * self.burst_frames as f64).min(1.0);
        self.fps * self.base_frame_mbit * 1e6 * kf * burst / 1e9
    }
}

/// A deterministic walk over the frame-size sequence. Arrival and delivery
/// each hold one cursor over the *same* stream, which is what keeps the
/// source O(1) in memory: no per-frame queue, just two replay positions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct FrameCursor {
    idx: u64,
    burst_left: u64,
}

impl FrameCursor {
    /// Size of the next frame (bits), advancing the cursor.
    fn next_bits(&mut self, cfg: &TrafficConfig, seed: u64) -> f64 {
        let mut mult = 1.0;
        if cfg.keyframe_every > 0 && self.idx % cfg.keyframe_every == 0 {
            mult *= cfg.keyframe_mult;
        }
        if cfg.viewport_switch_prob > 0.0 && unit(mix64(seed, self.idx)) < cfg.viewport_switch_prob
        {
            self.burst_left = cfg.burst_frames;
        }
        if self.burst_left > 0 {
            mult *= cfg.burst_mult;
            self.burst_left -= 1;
        }
        self.idx += 1;
        cfg.base_frame_mbit * 1e6 * mult
    }
}

/// Cumulative traffic/QoE counters of one [`TrafficSource`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficStats {
    /// Frames generated by the source.
    pub frames_generated: u64,
    /// Frames fully delivered over the link.
    pub frames_delivered: u64,
    /// Frames consumed by the display.
    pub frames_played: u64,
    /// Stall (rebuffering) episodes entered.
    pub stall_events: u64,
    /// Total stall time (seconds, slot-quantized).
    pub stall_s: f64,
    /// Gigabits offered (generated into the sender queue).
    pub offered_gb: f64,
    /// Gigabits delivered over the link.
    pub delivered_gb: f64,
    /// Peak sender backlog (megabits).
    pub peak_backlog_mbit: f64,
}

/// Per-slot playout outcome of [`TrafficSource::playout_step`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PlayoutSlot {
    /// Whether the display is stalled at the end of this slot.
    pub stalled: bool,
    /// A stall episode started this slot.
    pub stall_started: bool,
    /// A stall episode ended this slot; the payload is its duration (s).
    pub stall_ended: Option<f64>,
}

/// One session's traffic state: deterministic bursty frame arrivals, a
/// sender backlog drained by granted link slots, and a playout buffer whose
/// starvation is the stall-time QoE metric.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    cfg: TrafficConfig,
    seed: u64,
    /// Arrival-side cursor (frames generated so far).
    arrive: FrameCursor,
    /// Delivery-side cursor (frames fetched for transmission so far).
    deliver: FrameCursor,
    /// Remaining bits of the frame currently in transmission (0 = none).
    head_left_bits: f64,
    /// Bits queued at the sender (including the partial head frame).
    backlog_bits: f64,
    /// Complete frames at the receiver awaiting display.
    buffered_frames: u64,
    /// Playout has started (startup buffer filled once).
    started: bool,
    /// Display clock: when the next frame is due.
    next_play_t: f64,
    /// Currently stalled (display starved).
    stalled: bool,
    /// Length of the running stall episode (s).
    cur_stall_s: f64,
    stats: TrafficStats,
}

impl TrafficSource {
    /// Creates a source over its own deterministic `seed` stream.
    pub fn new(cfg: TrafficConfig, seed: u64) -> TrafficSource {
        TrafficSource {
            cfg,
            seed,
            arrive: FrameCursor::default(),
            deliver: FrameCursor::default(),
            head_left_bits: 0.0,
            backlog_bits: 0.0,
            buffered_frames: 0,
            started: false,
            next_play_t: 0.0,
            stalled: false,
            cur_stall_s: 0.0,
            stats: TrafficStats::default(),
        }
    }

    /// The source configuration.
    pub fn cfg(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Generates every frame due by time `t` (frame `i` arrives at
    /// `i / fps`) into the sender queue.
    pub fn arrive_until(&mut self, t: f64) {
        while (self.arrive.idx as f64) <= t * self.cfg.fps + 1e-9 {
            let bits = self.arrive.next_bits(&self.cfg, self.seed);
            self.backlog_bits += bits;
            self.stats.frames_generated += 1;
            self.stats.offered_gb += bits / 1e9;
        }
        let mbit = self.backlog_bits / 1e6;
        if mbit > self.stats.peak_backlog_mbit {
            self.stats.peak_backlog_mbit = mbit;
        }
    }

    /// Whether the sender has queued traffic (the scheduler's demand bit).
    pub fn has_demand(&self) -> bool {
        self.head_left_bits > 0.0 || self.deliver.idx < self.arrive.idx
    }

    /// Bits queued at the sender.
    pub fn backlog_bits(&self) -> f64 {
        self.backlog_bits
    }

    /// Drains up to `capacity_bits` from the sender queue (the slot's link
    /// capacity when granted and up); completed frames land in the playout
    /// buffer. Returns the bits actually delivered.
    pub fn deliver(&mut self, mut capacity_bits: f64) -> f64 {
        let mut delivered = 0.0;
        while capacity_bits > 0.0 {
            if self.head_left_bits <= 0.0 {
                if self.deliver.idx >= self.arrive.idx {
                    break; // queue empty
                }
                self.head_left_bits = self.deliver.next_bits(&self.cfg, self.seed);
            }
            let take = capacity_bits.min(self.head_left_bits);
            self.head_left_bits -= take;
            capacity_bits -= take;
            delivered += take;
            if self.head_left_bits <= 0.0 {
                self.buffered_frames += 1;
                self.stats.frames_delivered += 1;
            }
        }
        self.backlog_bits = (self.backlog_bits - delivered).max(0.0);
        self.stats.delivered_gb += delivered / 1e9;
        delivered
    }

    /// Advances the display clock to slot-end time `t` (slot length
    /// `slot_s`): frames are consumed once per period; an empty buffer at a
    /// frame deadline is a stall, and the clock pauses until a frame lands.
    pub fn playout_step(&mut self, t: f64, slot_s: f64) -> PlayoutSlot {
        let mut out = PlayoutSlot::default();
        let period = 1.0 / self.cfg.fps;
        if !self.started {
            if self.buffered_frames >= self.cfg.startup_frames.max(1) {
                self.started = true;
                self.next_play_t = t; // first frame plays immediately below
            } else {
                return out;
            }
        }
        loop {
            if self.stalled {
                if self.buffered_frames > 0 {
                    self.buffered_frames -= 1;
                    self.stats.frames_played += 1;
                    self.stalled = false;
                    out.stall_ended = Some(self.cur_stall_s);
                    self.cur_stall_s = 0.0;
                    // The clock restarts from the resume point.
                    self.next_play_t = t + period;
                }
                break;
            } else if self.next_play_t <= t + 1e-9 {
                if self.buffered_frames > 0 {
                    self.buffered_frames -= 1;
                    self.stats.frames_played += 1;
                    self.next_play_t += period;
                } else {
                    self.stalled = true;
                    self.stats.stall_events += 1;
                    out.stall_started = true;
                }
            } else {
                break;
            }
        }
        if self.stalled {
            self.stats.stall_s += slot_s;
            self.cur_stall_s += slot_s;
        }
        out.stalled = self.stalled;
        out
    }

    /// Whether the display is currently stalled.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Cumulative counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(cfg: TrafficConfig, seed: u64, slots: usize, cap_bits: f64) -> TrafficStats {
        let mut src = TrafficSource::new(cfg, seed);
        let slot_s = 1e-3;
        for k in 0..slots {
            let t = (k + 1) as f64 * slot_s;
            src.arrive_until(t);
            src.deliver(cap_bits);
            src.playout_step(t, slot_s);
        }
        src.stats()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = drive(TrafficConfig::default(), 7, 4000, 6e6);
        let b = drive(TrafficConfig::default(), 7, 4000, 6e6);
        assert_eq!(a, b);
        let c = drive(TrafficConfig::default(), 8, 4000, 6e6);
        assert_ne!(a, c, "different seeds must draw different bursts");
    }

    #[test]
    fn ample_capacity_never_stalls() {
        // 40 Mbit/slot = 40 Gbps against ~6.5 Gbps offered.
        let s = drive(TrafficConfig::default(), 3, 6000, 40e6);
        assert_eq!(s.stall_events, 0);
        assert_eq!(s.stall_s, 0.0);
        assert!(s.frames_played > 0);
        // Everything generated is eventually delivered (minus the tail).
        assert!(s.frames_delivered >= s.frames_generated - 2);
    }

    #[test]
    fn starved_link_stalls() {
        // 1 Mbit/slot = 1 Gbps against ~6.5 Gbps offered: the buffer drains.
        let s = drive(TrafficConfig::default(), 3, 6000, 1e6);
        assert!(s.stall_events > 0, "{s:?}");
        assert!(s.stall_s > 1.0, "{s:?}");
        assert!(s.delivered_gb < s.offered_gb);
    }

    #[test]
    fn zero_capacity_plays_nothing() {
        let s = drive(TrafficConfig::default(), 3, 2000, 0.0);
        assert_eq!(s.frames_delivered, 0);
        assert_eq!(s.frames_played, 0);
        // Playout never started, so no stall is charged either.
        assert_eq!(s.stall_s, 0.0);
        assert!(s.offered_gb > 0.0);
    }

    #[test]
    fn arrival_and_delivery_cursors_replay_the_same_stream() {
        let cfg = TrafficConfig::default();
        let mut a = FrameCursor::default();
        let mut b = FrameCursor::default();
        for _ in 0..500 {
            assert_eq!(
                a.next_bits(&cfg, 42).to_bits(),
                b.next_bits(&cfg, 42).to_bits()
            );
        }
    }

    #[test]
    fn keyframes_and_bursts_inflate_frames() {
        let cfg = TrafficConfig {
            viewport_switch_prob: 0.0,
            ..TrafficConfig::default()
        };
        let mut c = FrameCursor::default();
        let f0 = c.next_bits(&cfg, 1); // frame 0: keyframe
        let f1 = c.next_bits(&cfg, 1);
        assert!((f0 / f1 - cfg.keyframe_mult).abs() < 1e-12);
        assert_eq!(f1, cfg.base_frame_mbit * 1e6);
    }

    #[test]
    fn mean_offered_matches_simulation_roughly() {
        let cfg = TrafficConfig::default();
        let s = drive(cfg, 11, 20_000, 0.0);
        let measured = s.offered_gb / 20.0; // 20 s
        let predicted = cfg.mean_offered_gbps();
        assert!(
            (measured - predicted).abs() / predicted < 0.25,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn config_validation() {
        assert!(TrafficConfig::default().validate().is_ok());
        let bad = TrafficConfig {
            fps: 0.0,
            ..TrafficConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TrafficConfig {
            viewport_switch_prob: 1.5,
            ..TrafficConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TrafficConfig {
            burst_mult: 0.5,
            ..TrafficConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
