//! Property-based tests for the shared-TX scheduler invariants: no
//! double-booking under any policy/churn, admission bounded by the pool,
//! and proportional-fair convergence under symmetric demand.

use cyclops_link::sched::{
    GrantEngine, GreedyMaxMargin, ProportionalFair, SchedConfig, SessionSlotState, StaticPartition,
    TxScheduler,
};
use cyclops_par::mix64;
use proptest::prelude::*;
use std::collections::HashSet;

/// A synthetic slot state (no physics): servable iff `ok`.
fn state(session: usize, active: usize, ok: bool, rate: f64) -> SessionSlotState {
    SessionSlotState {
        session,
        admitted: true,
        active_unit: active,
        signal: ok,
        link_up: ok,
        margin_db: rate,
        rate_gbps: rate,
        demand: ok,
        backlog_bits: if ok { 1e9 } else { 0.0 },
        handed_over: false,
        served_ewma_gbps: 0.0,
        stalled: false,
    }
}

fn policy_for(pick: u8) -> Box<dyn TxScheduler> {
    match pick % 3 {
        0 => Box::new(StaticPartition { quantum_slots: 8 }),
        1 => Box::new(GreedyMaxMargin),
        _ => Box::new(ProportionalFair { alpha: 1.0 }),
    }
}

proptest! {
    /// Core invariant: across all policies and arbitrary per-slot churn of
    /// usability/active-unit/rate, no TX unit ever serves two sessions in
    /// one slot, the grant map stays bidirectionally consistent, and a
    /// session only transports on the unit its beam actually uses.
    #[test]
    fn no_unit_serves_two_sessions(
        n in 1usize..12,
        m in 1usize..6,
        pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let cfg = SchedConfig::greedy();
        let mut ge = GrantEngine::new(n, m, &cfg, 1e-3);
        let mut policy = policy_for(pick);
        let mut states: Vec<SessionSlotState> =
            (0..n).map(|i| state(i, 0, true, 8.0)).collect();
        for k in 0..200u64 {
            for (i, st) in states.iter_mut().enumerate() {
                let h = mix64(seed, k.wrapping_mul(131).wrapping_add(i as u64));
                let ok = h & 3 != 0; // servable ~75% of slots
                let active = ((h >> 2) as usize) % m;
                *st = state(i, active, ok, 4.0 + ((h >> 8) & 0xf) as f64);
            }
            ge.step(k, 1e-3, &mut states, policy.as_mut());
            prop_assert!(ge.grants().is_consistent());
            prop_assert!(ge.grants().n_granted() <= m.min(n));
            let mut served_units = HashSet::new();
            for (i, st) in states.iter().enumerate() {
                if ge.deliverable(i, st) {
                    let u = ge.unit_of(i).unwrap();
                    prop_assert_eq!(u, st.active_unit);
                    prop_assert!(served_units.insert(u), "unit {} served twice in slot {}", u, k);
                }
            }
        }
    }

    /// Admission control never exceeds the pool's capacity, under every
    /// policy's `admit`.
    #[test]
    fn admission_never_exceeds_pool(
        n in 1usize..40,
        m in 1usize..8,
        per in 1usize..4,
        pick in 0u8..3,
    ) {
        let mut policy = policy_for(pick);
        let cap = m * per;
        let mut admitted = 0usize;
        for i in 0..n {
            if policy.admit(i, admitted, cap) {
                admitted += 1;
            }
        }
        prop_assert!(admitted <= cap);
        prop_assert_eq!(admitted, n.min(cap));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Proportional-fair converges to even service shares when demand and
    /// channel quality are symmetric.
    #[test]
    fn pf_converges_under_symmetric_demand(n in 2usize..6, rate in 4.0..10.0f64) {
        let cfg = SchedConfig::proportional_fair(1.0);
        let mut pf = ProportionalFair { alpha: 1.0 };
        let mut ge = GrantEngine::new(n, 1, &cfg, 1e-3);
        let mut states: Vec<SessionSlotState> =
            (0..n).map(|i| state(i, 0, true, rate)).collect();
        let mut served = vec![0u64; n];
        for k in 0..20_000u64 {
            ge.step(k, 1e-3, &mut states, &mut pf);
            for i in 0..n {
                let ok = ge.deliverable(i, &states[i]);
                served[i] += ok as u64;
                ge.note_rate(i, if ok { rate } else { 0.0 });
            }
        }
        let total: u64 = served.iter().sum();
        prop_assert!(total > 0);
        for &s in &served {
            let share = s as f64 / total as f64;
            prop_assert!(
                (share - 1.0 / n as f64).abs() < 0.05,
                "share {} of 1/{} (served {:?})", share, n, served
            );
        }
    }
}
