//! Property-based tests for the data-plane layer.

use cyclops_geom::vec3::v3;
use cyclops_link::channel::FsoChannel;
use cyclops_link::crc::crc32;
use cyclops_link::engine::MarginSelector;
use cyclops_link::framing::Frame;
use cyclops_link::handover::{HandoverSystem, TxUnit};
use cyclops_link::iperf::ThroughputMeter;
use cyclops_link::sfp_state::SfpLinkState;
use cyclops_link::trace_sim::{simulate_trace, TraceSimParams};
use cyclops_optics::coupling::LinkDesign;
use cyclops_vrh::traces::{HeadTrace, TraceGenConfig};
use proptest::prelude::*;

proptest! {
    /// BER is a monotone non-increasing function of power below overload,
    /// bounded in [0, 0.5].
    #[test]
    fn ber_monotone(p1 in -60.0..5.0f64, p2 in -60.0..5.0f64) {
        let ch = FsoChannel::new(-25.0, 7.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let b_lo = ch.ber(lo);
        let b_hi = ch.ber(hi);
        prop_assert!((0.0..=0.5).contains(&b_lo));
        prop_assert!(b_hi <= b_lo + 1e-15);
    }

    /// The power→BER→frame-success chain is total: any input — finite,
    /// ±∞ or NaN, as a corrupted report could inject — yields BER in
    /// [0, 0.5] and frame success in [0, 1], never NaN.
    #[test]
    fn channel_total_on_any_input(
        finite in -1e308..1e308f64,
        pick in 0u8..4,
        n in 1u64..100_000,
    ) {
        let p = match pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => finite,
        };
        let ch = FsoChannel::new(-25.0, 7.0);
        let q = ch.q_factor(p);
        prop_assert!(q.is_finite() && q >= 0.0, "q({p}) = {q}");
        let b = ch.ber(p);
        prop_assert!((0.0..=0.5).contains(&b), "ber({p}) = {b}");
        let f = ch.frame_success_prob(p, n);
        prop_assert!((0.0..=1.0).contains(&f), "fsp({p}) = {f}");
    }

    /// Frame survival decreases with frame size.
    #[test]
    fn bigger_frames_survive_less(p in -30.0..-24.0f64, n1 in 100u64..5_000, n2 in 5_000u64..50_000) {
        let ch = FsoChannel::new(-25.0, 7.0);
        prop_assert!(ch.frame_success_prob(p, n2) <= ch.frame_success_prob(p, n1) + 1e-12);
    }

    /// Framing round-trips arbitrary payloads; CRC flags arbitrary flips.
    #[test]
    fn framing_roundtrip_and_corruption(seq in any::<u64>(),
                                        payload in prop::collection::vec(any::<u8>(), 0..512),
                                        flip_byte in 0usize..512, flip_bit in 0u8..8) {
        let f = Frame::new(seq, payload);
        let enc = f.encode();
        prop_assert_eq!(Frame::decode(&enc).unwrap(), f);
        let pos = flip_byte % enc.len();
        let mut bad = enc.clone();
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(Frame::decode(&bad).is_err(), "flip at {pos} undetected");
    }

    /// CRC distributes: distinct single-byte payloads get distinct CRCs
    /// (true for CRC-32 over 1-byte inputs).
    #[test]
    fn crc_distinguishes_bytes(a in any::<u8>(), b in any::<u8>()) {
        prop_assume!(a != b);
        prop_assert_ne!(crc32(&[a]), crc32(&[b]));
    }

    /// The SFP machine's total up-time never exceeds slots with signal.
    #[test]
    fn sfp_up_implies_signal_history(pattern in prop::collection::vec(any::<bool>(), 1..400)) {
        let mut s = SfpLinkState::new_up(0.05);
        let mut up_slots = 0usize;
        let mut signal_slots = 0usize;
        for &sig in &pattern {
            if sig {
                signal_slots += 1;
            }
            if s.step(sig, 1e-3) {
                up_slots += 1;
                // The link can only be up on a slot with signal.
                prop_assert!(sig);
            }
        }
        prop_assert!(up_slots <= signal_slots);
    }

    /// The throughput meter conserves bits: sum of windows equals input.
    #[test]
    fn meter_conserves_bits(rates in prop::collection::vec(0.0..10e9f64, 50..400)) {
        let mut m = ThroughputMeter::new(0.050);
        let mut total_bits = 0.0;
        for r in &rates {
            m.record(r * 1e-3, 1e-3);
            total_bits += r * 1e-3;
        }
        let complete = rates.len() / 50;
        let windowed_bits: f64 = m.windows().iter().map(|g| g * 1e9 * 0.050).sum();
        let accounted = (complete * 50) as f64;
        // Bits in completed windows match the first `complete*50` slots.
        let expected: f64 = rates.iter().take(accounted as usize).map(|r| r * 1e-3).sum();
        prop_assert!((windowed_bits - expected).abs() < 1e-3,
            "windowed {windowed_bits} vs expected {expected} (total {total_bits})");
    }

    /// Trace-sim availability is in \[0,1\] and zero-tolerance kills any
    /// moving trace.
    #[test]
    fn trace_sim_bounds(seed in 0u64..50) {
        let cfg = TraceGenConfig { duration_s: 2.0, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        let r = simulate_trace(&tr, &TraceSimParams::default());
        prop_assert!((0.0..=1.0).contains(&r.on_fraction));
        let strict = TraceSimParams {
            tol_lat_m: 0.0,
            tol_ang_rad: 0.0,
            residual_lat_m: 0.0,
            residual_ang_rad: 0.0,
            ..Default::default()
        };
        let r2 = simulate_trace(&tr, &strict);
        prop_assert!(r2.on_fraction <= r.on_fraction);
    }

    /// Tightening either tolerance can only reduce availability.
    #[test]
    fn trace_sim_monotone_in_tolerance(seed in 0u64..30, shrink in 0.2..1.0f64) {
        let cfg = TraceGenConfig { duration_s: 2.0, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        let base = TraceSimParams::default();
        let tight = TraceSimParams {
            tol_lat_m: base.tol_lat_m * shrink,
            tol_ang_rad: base.tol_ang_rad * shrink,
            ..base
        };
        let a = simulate_trace(&tr, &base).on_fraction;
        let b = simulate_trace(&tr, &tight).on_fraction;
        prop_assert!(b <= a + 1e-12);
    }

    /// Handover invariant: once the active unit dies, the selector pays
    /// exactly the switch delay (no delivery meanwhile) and lands on the
    /// usable unit with the best margin, which then delivers.
    #[test]
    fn dead_unit_hands_over_to_best_margin_after_the_delay(
        margins in prop::collection::vec(0.0..30.0f64, 1..6),
        switch_ms in 1usize..80,
    ) {
        // Unit 0 is dead (occluded / out of range); siblings carry random
        // non-negative margins.
        let n = margins.len() + 1;
        let margin =
            |i: usize| if i == 0 { f64::NEG_INFINITY } else { margins[i - 1] };
        let mut sel = MarginSelector::new(switch_ms as f64 * 1e-3);
        let mut active = 0usize;
        // Step 1 initiates the switch, then `switch_ms` slots count it down.
        for step in 0..=switch_ms {
            let (delivering, a) = sel.step(active, n, margin, 1e-3);
            prop_assert!(!delivering, "no delivery mid-switch (step {step})");
            active = a;
        }
        let best = (1..n)
            .max_by(|&a, &b| margin(a).partial_cmp(&margin(b)).unwrap())
            .unwrap();
        prop_assert_eq!(active, best, "active must hold the best margin");
        let (delivering, a) = sel.step(active, n, margin, 1e-3);
        prop_assert!(delivering && a == best, "delivery resumes after the delay");
    }

    /// Hysteresis invariant: under a margin tie the strict `>` comparison
    /// never switches, whatever unit we start from — no flip-flop.
    #[test]
    fn hysteresis_never_flip_flops_on_a_margin_tie(
        m in 0.0..25.0f64,
        h in 0.0..6.0f64,
        start in 0usize..4,
        n in 2usize..5,
        steps in 1usize..200,
    ) {
        let start = start % n;
        let mut sel = MarginSelector::new(0.01);
        sel.hysteresis_db = Some(h);
        let mut active = start;
        for _ in 0..steps {
            let (delivering, a) = sel.step(active, n, |_| m, 1e-3);
            prop_assert!(delivering, "tied usable units always deliver");
            active = a;
        }
        prop_assert_eq!(active, start, "a tie must never trigger a switch");
    }

    /// The geometric system agrees: an RX equidistant from two units (a
    /// perfect margin tie) never leaves unit 0 even with aggressive
    /// hysteresis, while an off-centre RX with hysteresis settles on the
    /// closer unit and stays there.
    #[test]
    fn handover_system_is_stable_under_symmetry(
        y in 0.0..1.5f64,
        z in -0.5..0.5f64,
        h in 0.0..3.0f64,
    ) {
        let design = LinkDesign::ten_g_diverging(20e-3, 2.0);
        let txs = vec![
            TxUnit { pos: v3(-0.8, 2.0, 0.0) },
            TxUnit { pos: v3(0.8, 2.0, 0.0) },
        ];
        let mut hs = HandoverSystem::new(txs, design, 0.01);
        hs.set_hysteresis_db(Some(h));
        // x = 0 ⇒ both units are at identical range: a perfect tie.
        let rx = v3(0.0, y, z);
        prop_assume!(hs.unit_margin_db(0, rx) >= 0.0);
        for _ in 0..120 {
            hs.step(rx, &[], 1e-3);
        }
        prop_assert_eq!(hs.active(), 0, "margin tie must not flip-flop");
    }
}

/// Property tests of the opt-in `fast-channel` interpolated tables
/// ([`cyclops_link::channel::fast::ChannelLut`]): the stated absolute error
/// bound vs the analytic path, and exact preservation of monotonicity in
/// power on both sides of the overload kink.
#[cfg(feature = "fast-channel")]
mod fast_channel {
    use super::*;
    use cyclops_link::channel::fast::{ChannelLut, ABS_ERR_BOUND};

    proptest! {
        /// Interpolated q, BER and frame-success stay within the stated
        /// absolute error bound of the analytic path everywhere — inside
        /// the tabulated grid and in the out-of-grid fallback region.
        #[test]
        fn lut_within_stated_error_bound(
            sens in -30.0..-20.0f64,
            over_off in 3.0..30.0f64,
            p in -60.0..25.0f64,
            n in 1_000u64..100_000,
        ) {
            let ch = FsoChannel::new(sens, sens + over_off);
            let lut = ChannelLut::new(ch, n);
            let dq = (lut.q_factor(p) - ch.q_factor(p)).abs();
            prop_assert!(dq <= ABS_ERR_BOUND, "q error {dq} at {p} dBm");
            let db = (lut.ber(p) - ch.ber(p)).abs();
            prop_assert!(db <= ABS_ERR_BOUND, "ber error {db} at {p} dBm");
            let df = (lut.frame_success_prob(p) - ch.frame_success_prob(p, n)).abs();
            prop_assert!(df <= ABS_ERR_BOUND, "fsp error {df} at {p} dBm");
        }

        /// Below the overload power more light is always at least as good:
        /// q and frame-success are non-decreasing, BER non-increasing —
        /// exactly, because the tables are monotonized after sampling.
        #[test]
        fn lut_monotone_below_overload(
            sens in -30.0..-20.0f64,
            over_off in 3.0..30.0f64,
            a in 0.0..1.0f64,
            b in 0.0..1.0f64,
        ) {
            let over = sens + over_off;
            let ch = FsoChannel::new(sens, over);
            let lut = ChannelLut::new(ch, 81_920);
            // Stay inside the tabulated grid (edge + margin) so the claim
            // is about the interpolated path, not the analytic fallback.
            let lo_edge = sens - 14.9;
            let p1 = lo_edge + a * (over - lo_edge);
            let p2 = lo_edge + b * (over - lo_edge);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(lut.q_factor(hi) >= lut.q_factor(lo));
            prop_assert!(lut.frame_success_prob(hi) >= lut.frame_success_prob(lo));
            prop_assert!(lut.ber(hi) <= lut.ber(lo));
        }

        /// Above the overload power the ordering reverses: more light only
        /// distorts harder — q and frame-success non-increasing, BER
        /// non-decreasing, again exactly.
        #[test]
        fn lut_monotone_above_overload(
            sens in -30.0..-20.0f64,
            over_off in 3.0..30.0f64,
            a in 0.0..1.0f64,
            b in 0.0..1.0f64,
        ) {
            let over = sens + over_off;
            let ch = FsoChannel::new(sens, over);
            let lut = ChannelLut::new(ch, 81_920);
            let hi_edge = over + 14.9;
            let p1 = over + a * (hi_edge - over);
            let p2 = over + b * (hi_edge - over);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(lut.q_factor(hi) <= lut.q_factor(lo));
            prop_assert!(lut.frame_success_prob(hi) <= lut.frame_success_prob(lo));
            prop_assert!(lut.ber(hi) >= lut.ber(lo));
        }
    }
}

/// Properties of the composable environment layer: attenuation only ever
/// removes power, and every stage is a pure function of (seed, time) — the
/// determinism contract the engine's golden digests rely on.
mod environment {
    use super::*;
    use cyclops_link::channel::{
        Environment, FogStage, HumanOccluderStage, RainStage, ScintillationStage,
    };

    /// Builds a full four-stage environment from sampled knobs.
    fn env(density: f64, rain: f64, sigma: f64, rate: f64, seed: u64) -> Environment {
        Environment::new()
            .stage(FogStage::from_density(density, 1550.0).expect("valid density"))
            .stage(RainStage::new(rain).expect("valid rain rate"))
            .stage(ScintillationStage::new(sigma, 10e-3, seed ^ 0x5c17).expect("valid sigma"))
            .stage(HumanOccluderStage::new(rate, 0.5, 30.0, seed ^ 0x0cc1).expect("valid rate"))
    }

    proptest! {
        /// The environment is monotone non-increasing in power: for any
        /// stage mix, time and path, `apply_dbm` never returns more power
        /// than went in, and the attenuation itself is finite and
        /// non-negative (scintillation is loss-clamped by design).
        #[test]
        fn env_only_removes_power(
            density in 0.0..1.0f64,
            rain in 0.0..150.0f64,
            sigma in 0.0..6.0f64,
            rate in 0.0..30.0f64,
            seed in any::<u64>(),
            t in 0.0..600.0f64,
            path in 0.1..50.0f64,
            p in -40.0..10.0f64,
        ) {
            let mut e = env(density, rain, sigma, rate, seed);
            let att = e.attenuation_db(t, path);
            prop_assert!(att.is_finite() && att >= 0.0, "att({t}, {path}) = {att}");
            prop_assert!(e.apply_dbm(t, path, p) <= p);
        }

        /// Identical seeds give bit-identical attenuation sequences, and
        /// `reseeded` is itself a pure function of (construction seed,
        /// stream) — stages derive everything from (seed, slot epoch),
        /// never from call count or shared RNG state.
        #[test]
        fn env_bit_deterministic_per_seed(
            density in 0.0..1.0f64,
            sigma in 0.0..6.0f64,
            rate in 0.0..30.0f64,
            seed in any::<u64>(),
            t0 in 0.0..60.0f64,
        ) {
            let mut a = env(density, 0.0, sigma, rate, seed);
            let mut b = env(density, 0.0, sigma, rate, seed);
            let mut c = env(density, 0.0, sigma, rate, seed).reseeded(seed ^ 0xdead);
            let mut d = env(density, 0.0, sigma, rate, seed).reseeded(seed ^ 0xdead);
            for k in 0..64 {
                let t = t0 + k as f64 * 1e-3;
                let x = a.attenuation_db(t, 1.75);
                prop_assert_eq!(x.to_bits(), b.attenuation_db(t, 1.75).to_bits());
                // Re-keying the same environment with the same stream
                // agrees bit-for-bit.
                prop_assert_eq!(
                    c.attenuation_db(t, 1.75).to_bits(),
                    d.attenuation_db(t, 1.75).to_bits()
                );
            }
        }
    }
}
