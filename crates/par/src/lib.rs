//! Deterministic fork-join parallelism for the Cyclops hot paths.
//!
//! The training and simulation pipelines are dominated by embarrassingly
//! parallel numeric work: finite-difference Jacobian columns, exhaustive
//! alignment grids, per-window link evaluation, speed-ladder sweeps. This
//! crate provides the small fork-join substrate they all share.
//!
//! Design rules (enforced by tests across the workspace):
//!
//! * **Bit-identical to serial.** Every helper maps an index space through a
//!   pure function and collects results in index order. There are no
//!   atomics-based float accumulations and no scheduling-dependent reduction
//!   orders, so a parallel run produces byte-for-byte the output of the
//!   serial loop regardless of thread count.
//! * **Opt-out, not opt-in.** The workspace enables the `parallel` feature
//!   by default; building with `--no-default-features` compiles the serial
//!   loops only. Even with the feature on, work smaller than `min_chunk`
//!   per thread runs serially to avoid spawn overhead.
//! * **Reproducible sizing.** Thread count resolves as: programmatic
//!   override ([`set_threads`]) → `CYCLOPS_THREADS` env var → the machine's
//!   available parallelism. Benchmarks pin it for stable CI numbers.
//!
//! The container this repo builds in cannot fetch crates.io, so rayon is
//! not available; the implementation uses `std::thread::scope`, which is
//! all the fork-join shape here needs. A thread is spawned per chunk per
//! call — negligible against the millisecond-scale chunks these pipelines
//! feed (measured in `BENCH_*.json`; see the README's Performance section).

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count for subsequent `par_*` calls (`0` clears the
/// override). Values above the hardware parallelism are honoured — the
/// serial/parallel equivalence tests rely on that to exercise real thread
/// handoffs even on small CI runners.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Runs `f` with the thread count pinned to `n`, restoring the previous
/// setting afterwards (also on panic).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.swap(n, Ordering::SeqCst));
    f()
}

/// The thread count `par_*` calls will use: override → `CYCLOPS_THREADS` →
/// available hardware parallelism. Always ≥ 1. With the `parallel` feature
/// disabled this is 1 unconditionally.
pub fn max_threads() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let ovr = THREAD_OVERRIDE.load(Ordering::SeqCst);
        if ovr > 0 {
            return ovr;
        }
        if let Ok(v) = std::env::var("CYCLOPS_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Whether the `parallel` feature is compiled in (the serial fallback is
/// always available; this reports which path default builds take).
pub const fn parallel_compiled() -> bool {
    cfg!(feature = "parallel")
}

/// Mixes two `u64`s into one well-distributed seed (the SplitMix64 finalizer
/// over a golden-ratio combination).
///
/// The stateful simulations (deployment noise RNGs) cannot share one RNG
/// across parallel work items without the draw order depending on the thread
/// schedule. Instead, callers derive one independent stream per item as
/// `seed_from_u64(mix64(stage_seed, item_index))` — a pure function of the
/// stage and the item, so serial and parallel runs consume identical streams.
pub const fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `0..n` through `f`, returning results in index order.
///
/// Splits the index space into at most [`max_threads`] contiguous chunks of
/// at least `min_chunk` indices; falls back to the plain serial loop when
/// one chunk suffices. `f` must be pure for the serial/parallel outputs to
/// agree — every caller in this workspace guarantees that.
pub fn par_map_indexed<R, F>(n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = n
        .checked_div(min_chunk.max(1))
        .unwrap_or(1)
        .clamp(1, max_threads());
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    #[cfg(not(feature = "parallel"))]
    {
        unreachable!("threads > 1 with the parallel feature disabled");
    }
    #[cfg(feature = "parallel")]
    {
        let chunk = n.div_ceil(threads);
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    s.spawn(move || {
                        let lo = k * chunk;
                        let hi = ((k + 1) * chunk).min(n);
                        (lo..hi).map(f).collect::<Vec<R>>()
                    })
                })
                .collect();
            for h in handles {
                // Panics inside workers propagate to the caller.
                out.extend(h.join().expect("cyclops-par worker panicked"));
            }
        });
        out
    }
}

/// Maps a slice through `f`, returning results in input order. See
/// [`par_map_indexed`] for the chunking and determinism contract.
pub fn par_map<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), min_chunk, |i| f(&items[i]))
}

/// First-wins argmax reduction over `0..n` by strictly-greater comparison —
/// the reduction shape of every exhaustive grid scan in the workspace.
///
/// `eval` maps an index to a score. Returns `(index, score)` of the first
/// index attaining the maximum (ties broken towards the lower index),
/// exactly as the serial left-to-right `>` scan would. Work is chunked
/// contiguously and each chunk's local first-wins maximum is combined in
/// chunk order, which preserves the serial tie-breaking bit-for-bit.
pub fn par_argmax<F>(n: usize, min_chunk: usize, eval: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    if n == 0 {
        return None;
    }
    // One result per chunk, combined in order: identical to the serial scan.
    let threads = n
        .checked_div(min_chunk.max(1))
        .unwrap_or(1)
        .clamp(1, max_threads());
    let chunk = n.div_ceil(threads);
    let chunk_best: Vec<(usize, f64)> = par_map_indexed(threads, 1, |k| {
        let lo = k * chunk;
        let hi = ((k + 1) * chunk).min(n);
        let mut best_i = lo;
        let mut best_v = f64::NEG_INFINITY;
        for i in lo..hi {
            let v = eval(i);
            if v > best_v {
                best_v = v;
                best_i = i;
            }
        }
        (best_i, best_v)
    });
    let mut best = (0usize, f64::NEG_INFINITY);
    for &(i, v) in &chunk_best {
        if v > best.1 {
            best = (i, v);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = par_map_indexed(1000, 1, |i| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_bitwise_for_floats() {
        let f = |i: usize| ((i as f64) * 0.1).sin().exp();
        let serial: Vec<f64> = (0..10_000).map(f).collect();
        let parallel = with_threads(8, || par_map_indexed(10_000, 16, f));
        // Bit-identical, not just approximately equal.
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn small_inputs_run_serial() {
        // min_chunk larger than n forces a single chunk; must still work.
        let out = par_map_indexed(5, 100, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn argmax_matches_serial_first_wins() {
        // A landscape with an exact tie: first index must win at any
        // thread count.
        let vals: Vec<f64> = (0..997)
            .map(|i| ((i % 91) as f64) - ((i / 200) as f64) * 0.0)
            .collect();
        let serial = {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, &v) in vals.iter().enumerate() {
                if v > best.1 {
                    best = (i, v);
                }
            }
            best
        };
        for t in [1, 2, 3, 8, 32] {
            let got = with_threads(t, || par_argmax(vals.len(), 7, |i| vals[i])).unwrap();
            assert_eq!(got, serial, "threads={t}");
        }
    }

    #[test]
    fn with_threads_restores() {
        set_threads(0);
        let before = max_threads();
        with_threads(3, || {
            assert_eq!(max_threads(), if parallel_compiled() { 3 } else { 1 })
        });
        assert_eq!(max_threads(), before);
    }

    #[test]
    fn mix64_decorrelates_nearby_inputs() {
        // Consecutive (seed, index) pairs must yield thoroughly different
        // outputs — a plain XOR would leave neighbouring streams correlated.
        let mut seen = std::collections::HashSet::new();
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert!(seen.insert(mix64(a, b)), "collision at ({a}, {b})");
            }
        }
        // Single-bit input change flips roughly half the output bits.
        let d = (mix64(7, 3) ^ mix64(7, 2)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn empty_input() {
        assert!(par_map_indexed(0, 1, |i| i).is_empty());
        assert!(par_argmax(0, 1, |_| 0.0).is_none());
    }
}
