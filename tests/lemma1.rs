//! Numerical verification of the paper's Lemma 1 — the foundation of both
//! the mapping error function (§4.2) and the pointing mechanism (§4.3):
//!
//! *"the configuration of the two GMs that maximizes the received power at
//! RX is the same as the configuration that ensures that (i) p_t and τ_r
//! coincide, and (ii) p_r and τ_t coincide."*

use cyclops::core::deployment::{cheat_align, Deployment, DeploymentConfig};
use cyclops::prelude::*;

#[test]
fn max_power_configuration_coincides_lemma_points() {
    for seed in [1u64, 2, 3] {
        let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(seed));
        cheat_align(&mut dep);
        let lp = dep.lemma_points().unwrap();
        assert!(
            lp.p_t.distance(lp.tau_r) < 1e-4,
            "seed {seed}: p_t/τ_r gap {}",
            lp.p_t.distance(lp.tau_r)
        );
        assert!(
            lp.p_r.distance(lp.tau_t) < 1e-4,
            "seed {seed}: p_r/τ_t gap {}",
            lp.p_r.distance(lp.tau_t)
        );
    }
}

#[test]
fn power_decreases_monotonically_with_lemma_gap() {
    let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(4));
    cheat_align(&mut dep);
    let (a, b, c, d) = dep.voltages();
    let mut last_power = f64::INFINITY;
    let mut last_gap = -1.0;
    for k in 0..6 {
        let dv = 0.03 * k as f64;
        dep.set_voltages(a + dv, b, c, d);
        let gap = dep.lemma_points().unwrap().gap();
        let power = dep.received_power_dbm();
        assert!(gap > last_gap, "gap must grow with mis-steer");
        assert!(
            power < last_power + 1e-9,
            "power must fall as the gap grows"
        );
        last_gap = gap;
        last_power = power;
    }
}

#[test]
fn lemma_holds_at_any_headset_placement() {
    let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(5));
    for k in 0..4 {
        let pose = Pose::translation(Vec3::new(
            -0.2 + 0.13 * k as f64,
            0.1 - 0.05 * k as f64,
            1.6 + 0.1 * k as f64,
        ));
        dep.set_headset_pose(pose);
        cheat_align(&mut dep);
        let lp = dep.lemma_points().unwrap();
        assert!(lp.gap() < 2e-4, "placement {k}: gap {}", lp.gap());
        // And the power at the Lemma point is within noise of this
        // placement's optimum — cross-check with a small local sweep.
        let p0 = dep.received_power_dbm();
        let (va, vb, vc, vd) = dep.voltages();
        for dv in [-0.02, 0.02] {
            for dim in 0..4 {
                let mut v = [va, vb, vc, vd];
                v[dim] += dv;
                dep.set_voltages(v[0], v[1], v[2], v[3]);
                let p = dep.received_power_dbm();
                assert!(
                    p <= p0 + 0.2,
                    "placement {k}: local voltage change improved power ({p0} → {p})"
                );
            }
        }
        dep.set_voltages(va, vb, vc, vd);
    }
}

#[test]
fn imaginary_beam_reciprocity() {
    // At alignment, the TX beam and the reversed RX imaginary beam must be
    // the same line in space (the optical-path picture of Fig 9).
    let mut dep = Deployment::new(&DeploymentConfig::ideal_10g(6));
    cheat_align(&mut dep);
    let beam_t = {
        let p = dep.tx_world_params();
        let (v1, v2) = dep.tx.voltages();
        p.trace(v1, v2).unwrap()
    };
    let beam_r = {
        let p = dep.rx_world_params();
        let (v1, v2) = dep.rx.voltages();
        p.trace(v1, v2).unwrap()
    };
    assert!(
        beam_t.dir.dot(beam_r.dir) < -0.999_99,
        "beams must be anti-parallel: {} · {}",
        beam_t.dir,
        beam_r.dir
    );
    assert!(
        beam_t.line_distance(&beam_r) < 2e-4,
        "line distance {}",
        beam_t.line_distance(&beam_r)
    );
}
