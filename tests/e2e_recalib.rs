//! End-to-end drift + mapping-only re-calibration: the §4 operational story
//! ("in case of re-deployment or VRH-T drift, the only re-training that
//! needs to be re-done is the mapping step"), asserted rather than just
//! demonstrated (see `examples/recalibration.rs` for the narrated version).

use cyclops::core::mapping;
use cyclops::core::recalib::{recalibrate_mapping, DriftMonitor};
use cyclops::core::tp::TpController;
use cyclops::geom::rotation::from_rotation_vector;
use cyclops::prelude::*;

/// Mean TP-aligned power over a few random placements.
fn probe(
    dep: &mut cyclops::core::deployment::Deployment,
    ctl: &mut TpController,
    tracker: &TrackerConfig,
) -> f64 {
    let mut acc = 0.0;
    const N: usize = 5;
    for _ in 0..N {
        let pose = mapping::random_placement(dep.rng(), 1.75);
        dep.set_headset_pose(pose);
        let rep = mapping::noisy_report(dep, tracker);
        let cmd = ctl.on_report(&rep);
        dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        acc += dep.received_power_dbm().max(-40.0);
    }
    acc / N as f64
}

#[test]
fn drift_is_flagged_and_mapping_only_recalibration_recovers() {
    let sys = CyclopsSystem::commission(&SystemConfig::fast_10g(77));
    let tracker = sys.tracker;
    let mut dep = sys.dep;
    let mut ctl = sys.ctl;

    let healthy = probe(&mut dep, &mut ctl, &tracker);
    assert!(healthy > -20.0, "commissioned TP unhealthy: {healthy} dBm");
    let mut monitor = DriftMonitor::new(healthy, 4.0);

    // Healthy operation must not trip the monitor.
    for _ in 0..6 {
        let p = probe(&mut dep, &mut ctl, &tracker);
        assert!(!monitor.observe(p), "false drift alarm at {p} dBm");
    }

    // The tracker re-anchors: hidden VR-space shifts ~2 cm / ~1.7°.
    let drift = Pose::new(
        from_rotation_vector(Vec3::new(0.0, 0.03, 0.0)),
        Vec3::new(0.02, -0.01, 0.015),
    );
    dep.headset.apply_vr_drift(&drift);

    // The monitor must flag the sustained shortfall within a dozen rounds.
    let mut flagged = false;
    let mut degraded = f64::INFINITY;
    for _ in 0..12 {
        let p = probe(&mut dep, &mut ctl, &tracker);
        degraded = degraded.min(p);
        if monitor.observe(p) {
            flagged = true;
            break;
        }
    }
    assert!(flagged, "drift never flagged (worst probe {degraded} dBm)");
    assert!(
        degraded < healthy - 4.0,
        "drift should cost several dB: healthy {healthy}, degraded {degraded}"
    );

    // Mapping-only repair: a handful of placements, board models untouched.
    let re = recalibrate_mapping(&mut dep, &ctl.mapping, 10, 4077);
    let v = dep.voltages();
    let mut ctl2 = TpController::new(re.trained, Default::default(), [v.0, v.1, v.2, v.3]);
    let recovered = probe(&mut dep, &mut ctl2, &tracker);
    assert!(
        recovered > healthy - 3.0,
        "recalibration must restore TP power: healthy {healthy}, recovered {recovered}"
    );
}
