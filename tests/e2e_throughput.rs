//! End-to-end throughput behaviour (the mechanism behind Figs 13–15) as
//! integration tests: slow motion sustains line rate, fast motion collapses,
//! and the 25G link tolerates less than the 10G link.

use cyclops::prelude::*;
use std::sync::OnceLock;

/// One paper-scale 10G commissioning shared by the tests in this file.
fn commissioned() -> CyclopsSystem {
    static SYS: OnceLock<CyclopsSystem> = OnceLock::new();
    SYS.get_or_init(|| CyclopsSystem::commission(&SystemConfig::paper_10g(1500)))
        .clone()
}

fn sim_with_rail(v: f64) -> Vec<SlotRecord> {
    let sys = commissioned();
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let mut rail = LinearRail::paper_protocol(base, Vec3::X);
    rail.v0 = v;
    rail.dv = 0.0;
    let mut sim = sys.into_simulator(rail);
    sim.run(6.0)
}

fn up_fraction(recs: &[SlotRecord]) -> f64 {
    recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64
}

#[test]
fn slow_linear_motion_sustains_line_rate_10g() {
    let recs = sim_with_rail(0.08);
    assert!(up_fraction(&recs) > 0.97, "up {}", up_fraction(&recs));
    let tp: f64 = recs.iter().map(|r| r.goodput_gbps).sum::<f64>() / recs.len() as f64;
    assert!(tp > 9.0, "mean goodput {tp} Gbps (optimal 9.4)");
}

#[test]
fn excessive_linear_speed_collapses_throughput() {
    let recs = sim_with_rail(1.5);
    assert!(up_fraction(&recs) < 0.5, "up {}", up_fraction(&recs));
}

#[test]
fn slow_rotation_sustains_line_rate() {
    let sys = commissioned();
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let mut stage = RotationStage::paper_protocol(base, Vec3::Y);
    stage.w0 = 8.0f64.to_radians();
    stage.dw = 0.0;
    let mut sim = sys.into_simulator(stage);
    let recs = sim.run(6.0);
    let up = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
    assert!(up > 0.95, "up fraction {up} at 8 deg/s");
}

#[test]
fn outage_costs_seconds_due_to_relink() {
    // One fast stroke breaks the link; even after motion stops the SFP
    // relink hysteresis keeps throughput at zero for seconds (§5.3: "once
    // the link is lost, it takes a few seconds to regain").
    let sys = commissioned();
    struct Burst {
        base: Pose,
    }
    impl Motion for Burst {
        fn pose_at(&mut self, t: f64) -> Pose {
            // 1 m/s for 0.2 s, then frozen (still inside the trained
            // placement envelope).
            let x = t.min(0.2) * 1.0;
            Pose::new(self.base.rot, self.base.trans + Vec3::new(x, 0.0, 0.0))
        }
    }
    let motion = Burst {
        base: Pose::translation(Vec3::new(0.0, 0.0, 1.75)),
    };
    let mut sim = sys.into_simulator(motion);
    let recs = sim.run(4.0);
    // Link must be down at t = 1 s (motion stopped at 0.2 s, TP has long
    // realigned the optics, but the SFP is still re-locking).
    let at_1s = &recs[999];
    assert!(!at_1s.link_up, "relink hysteresis missing");
    // Optical signal is already back, though:
    assert!(
        at_1s.power_dbm >= sim.dep().design.sfp.rx_sensitivity_dbm,
        "optics should be realigned by 1 s (power {})",
        at_1s.power_dbm
    );
    // And the link eventually returns.
    assert!(recs.last().unwrap().link_up, "link should be back by 4 s");
}

#[test]
fn link_25g_has_less_margin_than_10g() {
    let sys10 = CyclopsSystem::commission(&SystemConfig::fast_10g(1505));
    let sys25 = CyclopsSystem::commission(&SystemConfig {
        deployment: cyclops::core::deployment::DeploymentConfig::paper_25g(1505),
        ..SystemConfig::fast_10g(1505)
    });
    let m10 = sys10.dep.design.nominal_margin_db();
    let m25 = sys25.dep.design.nominal_margin_db();
    assert!(
        m25 < m10 - 5.0,
        "25G margin {m25} dB should be well below 10G {m10} dB (§5.3.1: ~13 dB less budget)"
    );
}
