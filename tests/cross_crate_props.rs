//! Cross-crate property tests: invariants that span the geometry, optics and
//! core layers.

use cyclops::core::gprime::gprime_default;
use cyclops::core::pointing::pointing_default;
use cyclops::geom::rotation::axis_angle;
use cyclops::optics::beam::capture_fraction;
use cyclops::optics::coupling::{LinkDesign, ReceiverGeometry};
use cyclops::optics::power::{dbm_to_mw, mw_to_dbm};
use cyclops::prelude::*;
use proptest::prelude::*;

fn unit_vec() -> impl Strategy<Value = Vec3> {
    (-1.0..1.0f64, -1.0..1.0f64, -1.0..1.0f64)
        .prop_filter("nonzero", |(x, y, z)| x * x + y * y + z * z > 1e-3)
        .prop_map(|(x, y, z)| Vec3::new(x, y, z).normalized())
}

fn rigid_pose() -> impl Strategy<Value = Pose> {
    (
        unit_vec(),
        -3.0..3.0f64,
        -2.0..2.0f64,
        -2.0..2.0f64,
        -2.0..2.0f64,
    )
        .prop_map(|(axis, ang, x, y, z)| Pose::new(axis_angle(axis, ang), Vec3::new(x, y, z)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// G'(point on beam of G(v)) recovers a beam through that point, in any
    /// rigid frame.
    #[test]
    fn gprime_inverts_g_in_any_frame(pose in rigid_pose(),
                                     v1 in -3.0..3.0f64, v2 in -3.0..3.0f64,
                                     dist in 0.5..3.0f64) {
        let g = GalvoParams::nominal().transformed(&pose);
        let beam = g.trace(v1, v2).unwrap();
        let target = beam.point_at(dist);
        let res = gprime_default(&g, target, (0.0, 0.0));
        prop_assert!(res.converged);
        prop_assert!(res.miss_distance < 1e-5, "miss {}", res.miss_distance);
        prop_assert!((res.v1 - v1).abs() < 1e-2);
        prop_assert!((res.v2 - v2).abs() < 1e-2);
    }

    /// Received power never exceeds launch power, for any geometry.
    #[test]
    fn no_free_energy(off_x in -0.2..0.2f64, off_y in -0.2..0.2f64,
                      tilt in -0.05..0.05f64, range in 1.0..3.0f64) {
        let d = LinkDesign::ten_g_diverging(20e-3, 1.75);
        let chief = Ray::new(Vec3::ZERO, axis_angle(Vec3::X, tilt) * Vec3::Z);
        let rx = ReceiverGeometry::new(Vec3::new(off_x, off_y, range), -Vec3::Z);
        let p = d.received_power_dbm(chief, &rx);
        prop_assert!(p <= d.launch_power_dbm() + 1e-9);
    }

    /// Aperture capture is a probability and monotone in aperture size.
    #[test]
    fn capture_fraction_sane(w in 1e-3..0.05f64, delta in 0.0..0.05f64,
                             a1 in 1e-4..0.02f64, grow in 1.0..3.0f64) {
        let c1 = capture_fraction(w, delta, a1);
        let c2 = capture_fraction(w, delta, a1 * grow);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-9, "bigger aperture must catch more");
    }

    /// dBm/mW round-trip across the dynamic range used in the system.
    #[test]
    fn power_units_roundtrip(dbm in -60.0..25.0f64) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
    }

    /// The pointing solution is invariant under a common rigid change of
    /// frame (the property that makes "VR-space" an acceptable workspace).
    #[test]
    fn pointing_frame_invariance(frame in rigid_pose(), sep in 1.2..2.5f64) {
        let tx = GalvoParams::nominal();
        let rx = GalvoParams::nominal().transformed(&Pose::new(
            axis_angle(Vec3::Y, std::f64::consts::PI),
            Vec3::new(0.05, 0.0, sep),
        ));
        let a = pointing_default(&tx, &rx, [0.0; 4]);
        let b = pointing_default(
            &tx.transformed(&frame),
            &rx.transformed(&frame),
            [0.0; 4],
        );
        prop_assert!(a.converged && b.converged);
        for i in 0..4 {
            prop_assert!((a.voltages[i] - b.voltages[i]).abs() < 1e-6,
                "voltage {i}: {} vs {}", a.voltages[i], b.voltages[i]);
        }
    }

    /// Trace CSV round-trips for arbitrary generated traces.
    #[test]
    fn trace_csv_roundtrip(seed in 0u64..1000) {
        let cfg = TraceGenConfig { duration_s: 0.5, ..Default::default() };
        let tr = HeadTrace::generate(&cfg, seed);
        let back = HeadTrace::from_csv(&tr.to_csv()).unwrap();
        prop_assert_eq!(tr.len(), back.len());
        for (a, b) in tr.samples.iter().zip(&back.samples) {
            prop_assert!((a.pos - b.pos).norm() < 1e-9);
            prop_assert!(a.quat.angle_to(&b.quat) < 1e-6);
        }
    }
}
