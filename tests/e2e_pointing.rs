//! End-to-end pointing behaviour of a commissioned system — the §5.2
//! "TP Performance" experiment as an integration test.

use cyclops::core::mapping;
use cyclops::prelude::*;
use std::sync::OnceLock;

/// One full paper-scale commissioning shared by all tests in this file
/// (each test clones it — the system is deterministic, tests stay isolated).
fn commissioned() -> CyclopsSystem {
    static SYS: OnceLock<CyclopsSystem> = OnceLock::new();
    SYS.get_or_init(|| CyclopsSystem::commission(&SystemConfig::paper_10g(1400)))
        .clone()
}

#[test]
fn repeated_random_realignments_reach_optimal_throughput() {
    // §5.2: "we move the RX assembly randomly, 'lock' it in place, run the
    // TP algorithm ... We repeat the above test 10 times. We observe that in
    // all tests, the link achieves the optimal throughput."
    let mut sys = commissioned();
    let mut successes = 0;
    for _ in 0..10 {
        let pose = mapping::random_placement(sys.dep.rng(), 1.75);
        sys.move_headset(pose);
        let rep = sys.track();
        sys.point(&rep);
        if sys.link_up() {
            successes += 1;
        }
    }
    assert!(
        successes >= 9,
        "{successes}/10 realignments closed the link"
    );
}

#[test]
fn tp_power_within_a_few_db_of_peak() {
    // §5.2: received power after TP "only slightly lower (at −13 to −14 dBm)
    // than the peak received power of −10 dBm".
    let mut sys = commissioned();
    let mut gaps = Vec::new();
    for _ in 0..5 {
        let pose = mapping::random_placement(sys.dep.rng(), 1.8);
        sys.move_headset(pose);
        let rep = sys.track();
        sys.point(&rep);
        let tp_power = sys.received_power_dbm();
        cyclops::core::deployment::cheat_align(&mut sys.dep);
        let peak = sys.received_power_dbm();
        gaps.push(peak - tp_power);
    }
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(mean_gap < 8.0, "mean TP power gap {mean_gap} dB");
    assert!(
        mean_gap > 0.0 - 1.0,
        "TP cannot beat the optimum by > noise"
    );
}

#[test]
fn pointing_latency_budget_holds() {
    // §5.2: TP latency 1–2 ms, dominated by DAC conversion.
    let mut sys = commissioned();
    for _ in 0..20 {
        let pose = mapping::random_placement(sys.dep.rng(), 1.75);
        sys.move_headset(pose);
        let rep = sys.track();
        let latency = sys.point(&rep);
        // Total includes mirror slew for these teleport-scale jumps; the
        // paper's 1–2 ms band applies to the compute+DAC component, checked
        // below via the controller metrics.
        assert!(latency < 25e-3, "total latency {} ms", latency * 1e3);
    }
    let mean_cmd = sys.ctl.metrics.mean_latency_s();
    assert!(
        (0.8e-3..2.5e-3).contains(&mean_cmd),
        "mean command latency {} ms outside the paper's 1–2 ms band",
        mean_cmd * 1e3
    );
    let m = &sys.ctl.metrics;
    assert_eq!(m.n_failures, 0, "pointing failures: {}", m.n_failures);
    assert!(
        m.mean_iters() <= 6.0,
        "mean P iterations {}",
        m.mean_iters()
    );
}

#[test]
fn pointing_survives_vrht_noise() {
    // The same true pose reported many times with VRH-T jitter: all reports
    // must keep the link up (the jitter is well inside movement tolerance).
    let mut sys = commissioned();
    sys.move_headset(Pose::translation(Vec3::new(0.05, 0.02, 1.78)));
    for _ in 0..20 {
        let rep = sys.track();
        sys.point(&rep);
        assert!(sys.link_up(), "noise-level report change broke the link");
    }
}

#[test]
fn stale_pointing_breaks_after_large_motion_then_recovers() {
    let mut sys = commissioned();
    sys.move_headset(Pose::translation(Vec3::new(0.0, 0.0, 1.75)));
    let rep = sys.track();
    sys.point(&rep);
    assert!(sys.link_up());
    // Large motion without re-pointing: link must drop...
    sys.move_headset(Pose::translation(Vec3::new(0.12, 0.0, 1.75)));
    assert!(!sys.link_up(), "12 cm without TP should break the link");
    // ...and one report restores it.
    let rep = sys.track();
    sys.point(&rep);
    assert!(sys.link_up());
}
