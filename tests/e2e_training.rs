//! End-to-end training pipeline test: the full §4 procedure at paper scale,
//! checked against the Table 2 error bands.

use cyclops::prelude::*;

#[test]
fn full_commissioning_matches_table2_bands() {
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(12021));
    let r = &sys.report;

    // Stage 1 (Table 2 "First Stage": avg 1.24/1.90 mm, max 5.30/5.41 mm).
    let tx1 = r.kspace_tx.mean * 1e3;
    let rx1 = r.kspace_rx.mean * 1e3;
    assert!((0.4..3.0).contains(&tx1), "stage-1 TX avg {tx1} mm");
    assert!((0.4..3.0).contains(&rx1), "stage-1 RX avg {rx1} mm");
    assert!(
        r.kspace_tx.max * 1e3 < 8.0,
        "stage-1 TX max {} mm",
        r.kspace_tx.max * 1e3
    );

    // Combined (Table 2: avg 2.18/4.54 mm, max 4.07/6.50 mm). Our mapping
    // trains over a wider ±20° orientation envelope than the paper appears
    // to (so the rotation-stage sweeps stay in-envelope), which costs a
    // factor ~2 in combined error at the extremes — see EXPERIMENTS.md.
    let txc = r.combined_tx.mean * 1e3;
    let rxc = r.combined_rx.mean * 1e3;
    assert!(txc < 12.0, "combined TX avg {txc} mm");
    assert!(rxc < 15.0, "combined RX avg {rxc} mm");

    // Enough aligned placements were collected.
    assert!(
        r.mapping_samples_used >= 25,
        "{} placements",
        r.mapping_samples_used
    );
}

#[test]
fn commissioning_is_deterministic_per_seed() {
    let a = CyclopsSystem::commission(&SystemConfig::fast_10g(5));
    let b = CyclopsSystem::commission(&SystemConfig::fast_10g(5));
    assert_eq!(a.report.kspace_tx.mean, b.report.kspace_tx.mean);
    assert_eq!(a.report.combined_rx.max, b.report.combined_rx.max);
    assert_eq!(a.ctl.last_voltages(), b.ctl.last_voltages());

    let c = CyclopsSystem::commission(&SystemConfig::fast_10g(6));
    assert_ne!(a.report.kspace_tx.mean, c.report.kspace_tx.mean);
}

#[test]
fn training_transfers_across_headset_tracking_frames() {
    // Two benches with identical seeds differ only in their hidden VR-space
    // / tracked-point draws... they don't (same seed = same world), so
    // instead: verify a system commissioned in one hidden frame still points
    // correctly — the hidden frames must be fully absorbed by the mapping.
    let mut sys = CyclopsSystem::commission(&SystemConfig::fast_10g(31));
    let mut ok = 0;
    for k in 0..6 {
        let p = Pose::translation(Vec3::new(
            -0.15 + 0.06 * k as f64,
            0.1 - 0.04 * k as f64,
            1.65 + 0.06 * k as f64,
        ));
        sys.move_headset(p);
        let rep = sys.track();
        sys.point(&rep);
        if sys.link_up() {
            ok += 1;
        }
    }
    assert!(ok >= 5, "only {ok}/6 placements closed the link");
}

#[test]
fn fast_config_trades_accuracy_for_speed() {
    // The reduced board must still commission a usable system, but the
    // full-size board should never be *worse* on stage-1 error.
    let fast = CyclopsSystem::commission(&SystemConfig::fast_10g(77));
    let full = CyclopsSystem::commission(&SystemConfig::paper_10g(77));
    assert!(full.report.kspace_tx.mean <= fast.report.kspace_tx.mean * 2.0);
    assert!(fast.report.combined_rx.mean < 0.02, "fast config unusable");
}
