//! Integration tests of the §5.4 user-trace study pipeline: synthetic
//! corpus → trace simulation → availability statistics (Fig 16's machinery).

use cyclops::link::trace_sim::{simulate_corpus, simulate_trace, TraceSimParams};
use cyclops::prelude::*;
use cyclops::vrh::speeds::{angular_speeds, linear_speeds};

#[test]
fn corpus_availability_in_fig16_band() {
    // 50 traces (the harness runs the full 500): overall availability should
    // land near the paper's 98.6 %, with per-trace spread reaching down
    // towards ~95 %.
    let traces = HeadTrace::generate_corpus(160_001, 10, 5);
    let fracs = simulate_corpus(&traces, &TraceSimParams::default());
    let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
    assert!((0.95..0.999).contains(&mean), "mean availability {mean}");
    let min = fracs.iter().cloned().fold(1.0, f64::min);
    let max = fracs.iter().cloned().fold(0.0, f64::max);
    assert!(min < max, "styles must produce spread");
    assert!(min > 0.80, "worst trace {min}");
}

#[test]
fn generated_speeds_respect_fig3_envelope() {
    // Fig 3 characterizes *normal use* (the authors' earlier study [55]);
    // the 360°-viewing corpus of Fig 16 has a deliberate fast-saccade tail.
    let traces: Vec<HeadTrace> = (0..10)
        .map(|i| HeadTrace::generate(&TraceGenConfig::normal_use(), 160_002 + i))
        .collect();
    for tr in &traces {
        let lin = linear_speeds(tr);
        let ang = angular_speeds(tr);
        let lin95 = quantile(&lin, 0.95);
        let ang95 = quantile(&ang, 0.95);
        // Fig 3: "during normal use, the angular and linear speeds ... were
        // at most 19 deg/s and 14 cm/s" — high percentiles sit below those.
        assert!(lin95 < 0.2, "95th pct linear {lin95} m/s");
        assert!(
            ang95.to_degrees() < 30.0,
            "95th pct angular {} deg/s",
            ang95.to_degrees()
        );
    }
}

fn quantile(v: &[f64], q: f64) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s[((s.len() - 1) as f64 * q) as usize]
}

#[test]
fn off_slots_are_mostly_scattered() {
    // §5.4: "> 60% of [off-timeslots] occur in frames (of 30 contiguous
    // timeslots) with less than 10 off-timeslots."
    let traces = HeadTrace::generate_corpus(160_003, 10, 5);
    let p = TraceSimParams::default();
    let mut total_off = 0usize;
    let mut scattered = 0.0f64;
    for tr in &traces {
        let r = simulate_trace(tr, &p);
        let off = r.off_slots();
        if off > 0 {
            scattered += r.off_slot_scatter_fraction(30, 10) * off as f64;
            total_off += off;
        }
    }
    assert!(total_off > 0, "corpus should have some outage to measure");
    let frac = scattered / total_off as f64;
    assert!(frac > 0.3, "scattered fraction {frac} (paper: > 0.6)");
}

#[test]
fn tighter_tolerances_reduce_availability() {
    let trace = HeadTrace::generate(&TraceGenConfig::default(), 160_004);
    let loose = simulate_trace(&trace, &TraceSimParams::default()).on_fraction;
    let tight = simulate_trace(
        &trace,
        &TraceSimParams {
            tol_lat_m: 5.0e-3,
            tol_ang_rad: 5.0e-3,
            ..Default::default()
        },
    )
    .on_fraction;
    assert!(tight <= loose, "tight {tight} vs loose {loose}");
}

#[test]
fn faster_reports_improve_availability() {
    // The §5.2 prediction: higher tracking frequency → better performance.
    // Emulate by resampling the trace at 5 ms (a 200 Hz tracker).
    let slow = HeadTrace::generate(
        &TraceGenConfig {
            saccade_rate: 0.8,
            ..Default::default()
        },
        160_005,
    );
    let mut fast = slow.clone();
    // Interpolate to 5 ms reporting.
    let mut samples = Vec::with_capacity(slow.len() * 2);
    for i in 0..slow.len() - 1 {
        let a = slow.samples[i];
        let b = slow.samples[i + 1];
        samples.push(a);
        samples.push(cyclops::vrh::traces::TraceSample {
            t_ms: (a.t_ms + b.t_ms) / 2.0,
            pos: a.pos.lerp(b.pos, 0.5),
            quat: a.quat.slerp(&b.quat, 0.5),
        });
    }
    samples.push(*slow.samples.last().unwrap());
    fast.samples = samples;
    fast.period_ms = 5.0;

    let p = TraceSimParams::default();
    let a_slow = simulate_trace(&slow, &p).on_fraction;
    let a_fast = simulate_trace(&fast, &p).on_fraction;
    assert!(
        a_fast >= a_slow,
        "200 Hz tracking {a_fast} must beat 100 Hz {a_slow}"
    );
}
