//! Multi-TX handover under occlusion — the §3 coverage extension.
//!
//! "To circumvent occasional occlusions ... we can use multiple TXs on the
//! ceiling with appropriate handover techniques." This example quantifies
//! that: a user's raised arm (a wandering spherical occluder) repeatedly
//! blocks the line of sight, and we compare link availability with 1, 2 and
//! 4 ceiling units.
//!
//! ```sh
//! cargo run --release --example multi_tx_handover
//! ```

use cyclops::link::handover::{HandoverSystem, Occluder, TxUnit};
use cyclops::optics::coupling::LinkDesign;
use cyclops::prelude::Vec3;

fn availability(n_tx: usize, seed: u64) -> f64 {
    // Ceiling units spread over a 2 m rail above the play space.
    let txs: Vec<TxUnit> = (0..n_tx)
        .map(|i| {
            let x = if n_tx == 1 {
                0.0
            } else {
                -1.0 + 2.0 * i as f64 / (n_tx - 1) as f64
            };
            TxUnit {
                pos: Vec3::new(x, 2.2, 0.0),
            }
        })
        .collect();
    let design = LinkDesign::ten_g_diverging(20e-3, 2.2);
    let mut hs = HandoverSystem::new(txs, design, 0.05);

    // The user's arm: a 20 cm sphere wandering near head height.
    let mut arm = Occluder::new(Vec3::new(0.2, 1.2, 0.0), 0.20, 1.2, seed);
    let rx = Vec3::new(0.0, 0.0, 0.0);

    let slots = 60_000; // one minute at 1 ms
    let mut ok = 0usize;
    for _ in 0..slots {
        arm.step(1e-3);
        // Keep the arm plausibly near the body.
        let pull = (Vec3::new(0.2, 1.2, 0.0) - arm.center) * 0.002;
        arm.center += pull;
        if hs.step(rx, std::slice::from_ref(&arm), 1e-3) {
            ok += 1;
        }
    }
    ok as f64 / slots as f64
}

/// Act 2: the same story on the full physical pipeline — two trained
/// installations sharing one headset world, a static occluder parked on the
/// active beam, and the real SFP re-lock cost.
fn full_physics_act() {
    use cyclops::core::deployment::{Deployment, DeploymentConfig};
    use cyclops::core::kspace::{train_both, BoardConfig};
    use cyclops::core::mapping::{self, rough_initial_guess};
    use cyclops::core::tp::{TpConfig, TpController};
    use cyclops::link::handover::Occluder;
    use cyclops::prelude::{MultiTxSimulator, Pose, StaticPose, TxInstallation};

    println!("\n-- full-physics act: 2 trained units, occluder on unit 0 --");
    let seed = 777u64;
    let board = BoardConfig {
        cols: 10,
        rows: 8,
        cell_m: 0.0508,
    };
    let units: Vec<TxInstallation> = [Vec3::new(-0.35, 0.0, 0.0), Vec3::new(0.35, 0.0, 0.0)]
        .into_iter()
        .map(|pos| {
            let mut cfg = DeploymentConfig::paper_10g(seed);
            cfg.tx_position = pos;
            let mut dep = Deployment::new(&cfg);
            let (tx_tr, tx_rig, rx_tr, rx_rig) =
                train_both(&dep, &board, seed).expect("stage-1 training");
            let (itx, irx) = rough_initial_guess(&dep, &tx_rig, &rx_rig, 0.05, 0.08, seed + 7);
            let mt = mapping::train(
                &mut dep,
                &tx_tr.fitted,
                &rx_tr.fitted,
                itx,
                irx,
                12,
                seed + 9,
            );
            let v = dep.voltages();
            let ctl = TpController::new(mt.trained, TpConfig::default(), [v.0, v.1, v.2, v.3]);
            TxInstallation { dep, ctl }
        })
        .collect();
    let tx0 = units[0].dep.tx_world_params().q2;
    let rx = Vec3::new(0.0, 0.0, 1.75);
    let occ = Occluder::new(tx0.lerp(rx, 0.5), 0.12, 0.0, 1);
    let motion = StaticPose(Pose::translation(rx));
    let mut sim = MultiTxSimulator::new(units, motion, vec![occ]);
    let recs = sim.run(5.0);
    let up = recs.iter().filter(|r| r.link_up).count() as f64 / recs.len() as f64;
    let first_recovery = recs.iter().position(|r| r.active == 1 && r.link_up);
    println!(
        "  handover to unit {} completed; outage until t = {:.2} s (SFP re-lock);\n  availability over 5 s: {:.1} %",
        sim.active(),
        first_recovery.map_or(f64::NAN, |i| recs[i].t),
        up * 100.0
    );
}

fn main() {
    println!("== Multi-TX handover under occlusion ==\n");
    println!("one minute of a wandering-arm occluder, 1 ms slots, 50 ms handover cost\n");
    println!("  ceiling TXs | link availability");
    println!("  ----------- | -----------------");
    for n in [1usize, 2, 4] {
        let mut avgs = 0.0;
        const RUNS: u64 = 3;
        for seed in 0..RUNS {
            avgs += availability(n, 1000 + seed);
        }
        let a = avgs / RUNS as f64 * 100.0;
        println!("  {n:>11} | {a:>6.2} %");
    }
    println!("\nmore ceiling units → fewer un-coverable occlusions, at the cost of");
    println!("a 50 ms outage per handover (steer + SFP re-lock on the new unit).");

    full_physics_act();
}
