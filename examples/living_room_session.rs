//! A one-minute VR session in a living room: full physical simulation of a
//! user watching a 360° video under a commissioned Cyclops link.
//!
//! ```sh
//! cargo run --release --example living_room_session
//! ```

use cyclops::prelude::*;

fn main() {
    println!("== Cyclops living-room session ==\n");

    // Commission the 25G system (§5.3.1 prototype).
    let cfg = SystemConfig::paper_25g(77);
    println!("commissioning the 25G link ...");
    let system = CyclopsSystem::commission(&cfg);
    println!(
        "  trained: combined model error TX {:.1} mm / RX {:.1} mm avg\n",
        system.report.combined_tx.mean * 1e3,
        system.report.combined_rx.mean * 1e3
    );

    // A one-minute session of a *calm* viewer (the Fig-3 normal-use
    // profile). Note: the restless 360°-scanning profile used for the Fig 16
    // corpus breaks the link on every fast saccade, and the *physical* SFP
    // needs seconds to re-lock each time — a real-deployment effect the
    // paper's §5.4 drift-only methodology does not model (see
    // EXPERIMENTS.md, "Known deviations").
    let trace = HeadTrace::generate(&TraceGenConfig::normal_use(), 4242);
    println!(
        "head-motion trace: {} samples over {:.0} s",
        trace.len(),
        trace.duration_s()
    );
    let base = Pose::translation(Vec3::new(0.0, 0.0, 1.75));
    let playback = TracePlayback::new(base, trace);

    // Run the full 1 ms-slot simulation: motion -> VRH-T reports -> TP ->
    // optics -> SFP state machine -> goodput.
    let mut sim = system.into_simulator(playback);
    let records = sim.run(60.0);

    let n = records.len() as f64;
    let up = records.iter().filter(|r| r.link_up).count() as f64;
    let mean_tp = records.iter().map(|r| r.goodput_gbps).sum::<f64>() / n;
    let mean_power = records
        .iter()
        .filter(|r| r.power_dbm.is_finite())
        .map(|r| r.power_dbm)
        .sum::<f64>()
        / n;
    let max_lin = records.iter().map(|r| r.lin_speed).fold(0.0, f64::max);
    let max_ang = records.iter().map(|r| r.ang_speed).fold(0.0, f64::max);

    println!("\nsession results:");
    println!(
        "  link availability : {:.2} % of 1 ms slots",
        up / n * 100.0
    );
    println!("  mean goodput      : {mean_tp:.1} Gbps (optimal 23.5)");
    println!("  mean rx power     : {mean_power:.1} dBm");
    println!(
        "  peak motion       : {:.1} cm/s linear, {:.1} deg/s angular",
        max_lin * 1e2,
        max_ang.to_degrees()
    );
    // What content fits through what we actually delivered (§2.1 arithmetic).
    use cyclops::link::video::{supported_formats, VideoFormat};
    let menu = [
        VideoFormat::hd_90(),
        VideoFormat::uhd4k_90(),
        VideoFormat::uhd8k_30(),
        VideoFormat::uhd8k_rgbad_60(),
    ];
    let fits = supported_formats(mean_tp, &menu);
    println!("\nuncompressed content this session's goodput carries:");
    for f in &menu {
        let ok = fits.iter().any(|x| x.name == f.name);
        println!(
            "  {} {:<22} {:>7.1} Gbps",
            if ok { "[ok]" } else { "[--]" },
            f.name,
            f.gbps()
        );
    }

    println!(
        "\n(the paper's Fig 16 reports ~98.6 % availability over 500 viewing traces\n under its drift-only §5.4 methodology — run `cargo run --release -p\n cyclops-bench --bin fig16_user_traces` for the full corpus; the full-physics\n simulation above additionally pays the SFP's multi-second re-lock after any\n outage, so restless sessions degrade much further)"
    );
}
