//! Drift and mapping-only re-calibration — the §4 operational story:
//! "in case of re-deployment or VRH-T drift, the only re-training
//! (calibration) that needs to be re-done is the mapping step."
//!
//! This example commissions a link, lets the headset tracker re-anchor its
//! map (a real SLAM behaviour that shifts the hidden VR-space), watches the
//! drift monitor flag the degradation, and repairs it with a 10-placement
//! mapping-only re-calibration — reusing the grid-board models untouched.
//!
//! ```sh
//! cargo run --release --example recalibration
//! ```

use cyclops::core::mapping;
use cyclops::core::recalib::{recalibrate_mapping, DriftMonitor};
use cyclops::core::tp::TpController;
use cyclops::geom::rotation::from_rotation_vector;
use cyclops::prelude::*;

/// Mean TP-aligned power over a few random placements.
fn probe(sys_dep: &mut cyclops::core::deployment::Deployment, ctl: &mut TpController) -> f64 {
    let mut acc = 0.0;
    const N: usize = 5;
    for _ in 0..N {
        let pose = mapping::random_placement(sys_dep.rng(), 1.75);
        sys_dep.set_headset_pose(pose);
        let rep = mapping::noisy_report(sys_dep, &TrackerConfig::default());
        let cmd = ctl.on_report(&rep);
        sys_dep.set_voltages(
            cmd.voltages[0],
            cmd.voltages[1],
            cmd.voltages[2],
            cmd.voltages[3],
        );
        acc += sys_dep.received_power_dbm().max(-40.0);
    }
    acc / N as f64
}

fn main() {
    println!("== Drift + mapping-only re-calibration ==\n");
    println!("commissioning 10G system ...");
    let sys = CyclopsSystem::commission(&SystemConfig::paper_10g(2026));
    let mut dep = sys.dep;
    let mut ctl = sys.ctl;

    let healthy = probe(&mut dep, &mut ctl);
    println!("healthy: mean TP-aligned power {healthy:.1} dBm");
    let mut monitor = DriftMonitor::new(healthy, 4.0);

    // The tracker re-anchors: VR-space shifts by ~2 cm / ~1.7°.
    println!("\n[tracker re-localizes: hidden VR-space shifts 2 cm / 1.7°]");
    let drift = Pose::new(
        from_rotation_vector(Vec3::new(0.0, 0.03, 0.0)),
        Vec3::new(0.02, -0.01, 0.015),
    );
    dep.headset.apply_vr_drift(&drift);

    // The monitor sees the sustained power shortfall within a few reports.
    let mut flagged_after = None;
    for k in 1..=12 {
        let p = probe(&mut dep, &mut ctl);
        if monitor.observe(p) && flagged_after.is_none() {
            flagged_after = Some(k);
        }
    }
    println!(
        "degraded: mean TP-aligned power {:.1} dBm; drift flagged after {} probe rounds",
        monitor.ewma_dbm(),
        flagged_after.map_or("never".into(), |k: usize| k.to_string())
    );

    // Mapping-only repair: 10 exhaustive placements, grid-board models reused.
    println!("\n[re-running §4.2 only: 10 placements, K-space models untouched]");
    let re = recalibrate_mapping(&mut dep, &ctl.mapping, 10, 4077);
    let v = dep.voltages();
    let mut ctl2 = TpController::new(re.trained, Default::default(), [v.0, v.1, v.2, v.3]);
    let recovered = probe(&mut dep, &mut ctl2);
    println!("recovered: mean TP-aligned power {recovered:.1} dBm");
    println!(
        "\nfull commissioning aligns ~30 placements + 2×266 board points;\nthe repair needed {} placements and no board time at all.",
        re.samples.len()
    );
}
