//! Quickstart: commission a Cyclops link and keep it aligned by tracking
//! alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cyclops::prelude::*;

fn main() {
    println!("== Cyclops quickstart ==\n");

    // Commission a 10G system: builds the (simulated) bench, calibrates both
    // galvo assemblies on the grid board (§4.1 of the paper), and learns the
    // 12 VR-space mapping parameters from exhaustively-aligned placements
    // (§4.2). `fast_10g` uses a reduced training budget so this runs in
    // seconds; `paper_10g` is the full-size procedure.
    let cfg = SystemConfig::fast_10g(2022);
    println!("commissioning (seed {}) ...", cfg.seed);
    let mut system = CyclopsSystem::commission(&cfg);
    let rep = &system.report;
    println!(
        "  stage-1 model error:  TX {:.2} mm avg, RX {:.2} mm avg",
        rep.kspace_tx.mean * 1e3,
        rep.kspace_rx.mean * 1e3
    );
    println!(
        "  combined model error: TX {:.2} mm avg, RX {:.2} mm avg ({} placements)",
        rep.combined_tx.mean * 1e3,
        rep.combined_rx.mean * 1e3,
        rep.mapping_samples_used
    );

    // Move the headset around; after each move, one tracking report plus the
    // pointing function P realigns the beam — no optical feedback at all.
    println!("\nmoving the headset:");
    let poses = [
        Vec3::new(0.10, 0.00, 1.80),
        Vec3::new(-0.15, 0.08, 1.70),
        Vec3::new(0.05, -0.12, 1.95),
    ];
    for p in poses {
        system.move_headset(Pose::translation(p));
        let before = system.received_power_dbm();
        let report = system.track();
        let latency = system.point(&report);
        let after = system.received_power_dbm();
        println!(
            "  headset at ({:+.2}, {:+.2}, {:.2}) m: power {:>7.1} -> {:>6.1} dBm  (TP {:.2} ms, link {})",
            p.x,
            p.y,
            p.z,
            before,
            after,
            latency * 1e3,
            if system.link_up() { "UP" } else { "DOWN" }
        );
        assert!(system.link_up(), "the TP mechanism should close the link");
    }

    println!("\nall poses realigned from tracking alone — no photodiode feedback.");
}
