//! A guided walkthrough of the three learning stages of the Cyclops pointing
//! mechanism (paper §4, Fig 6), with the intermediate numbers printed.
//!
//! ```sh
//! cargo run --release --example train_and_point
//! ```

use cyclops::core::alignment::exhaustive_align;
use cyclops::core::deployment::{Deployment, DeploymentConfig};
use cyclops::core::gprime::gprime_default;
use cyclops::core::kspace::{self, BoardConfig, KspaceRig};
use cyclops::core::mapping;
use cyclops::core::pointing::pointing_default;
use cyclops::prelude::*;

fn main() {
    let seed = 7u64;
    println!("== Cyclops training walkthrough (seed {seed}) ==\n");

    // The bench: hidden-truth hardware the learner can only probe.
    let mut dep = Deployment::new(&DeploymentConfig::paper_10g(seed));
    println!(
        "bench: {} + EDFA, launch {:.0} dBm, sensitivity {:.0} dBm, range {:.2} m",
        dep.design.sfp.name,
        dep.design.launch_power_dbm(),
        dep.design.sfp.rx_sensitivity_dbm,
        dep.design.nominal_range
    );

    // ---- Stage 1: learn G in K-space (§4.1) -------------------------------
    println!("\n[stage 1] grid-board calibration of each GMA");
    let board = BoardConfig::default();
    let mut tx_rig = KspaceRig::standard(dep.tx.clone(), seed + 1);
    let tx_init = tx_rig.cad_initial_guess();
    let tx_samples = tx_rig.collect_samples(&board);
    let tx_fit = kspace::fit(&tx_samples, &tx_init).expect("stage-1 fit");
    println!(
        "  TX: {} samples on the {}x{} board -> avg {:.2} mm, max {:.2} mm",
        tx_samples.len(),
        board.cols,
        board.rows,
        tx_fit.train_error.mean * 1e3,
        tx_fit.train_error.max * 1e3
    );
    let mut rx_rig = KspaceRig::standard(dep.rx.clone(), seed + 2);
    let rx_init = rx_rig.cad_initial_guess();
    let rx_samples = rx_rig.collect_samples(&board);
    let rx_fit = kspace::fit(&rx_samples, &rx_init).expect("stage-1 fit");
    println!(
        "  RX: {} samples -> avg {:.2} mm, max {:.2} mm   (paper Table 2: 1.24/1.90 mm avg)",
        rx_samples.len(),
        rx_fit.train_error.mean * 1e3,
        rx_fit.train_error.max * 1e3
    );

    // ---- Stage 2: learn the 12 mapping parameters (§4.2) ------------------
    println!("\n[stage 2] exhaustive alignments + Lemma-1 joint fit");
    let (init_tx, init_rx) = mapping::rough_initial_guess(
        &dep,
        &tx_rig.true_rig_pose(),
        &rx_rig.true_rig_pose(),
        0.05,
        0.08,
        seed + 7,
    );
    let mt = mapping::train(
        &mut dep,
        &tx_fit.fitted,
        &rx_fit.fitted,
        init_tx,
        init_rx,
        30,
        seed + 9,
    );
    let (ct, cr) = mt.trained.combined_errors(&mt.samples);
    println!(
        "  {} aligned placements; combined error TX avg {:.2} mm / RX avg {:.2} mm",
        mt.samples.len(),
        ct.mean * 1e3,
        cr.mean * 1e3
    );
    println!("  (paper Table 2 combined: TX 2.18 mm, RX 4.54 mm avg)");

    // ---- Stage 3: the online pointing function (§4.3) ---------------------
    println!("\n[stage 3] pointing from tracking alone");
    dep.set_headset_pose(Pose::translation(Vec3::new(0.12, -0.06, 1.82)));
    let reported = mapping::noisy_report(&mut dep, &TrackerConfig::default());
    let tx_vr = mt.trained.tx_in_vr();
    let rx_vr = mt.trained.rx_in_vr(&reported);

    // G': invert the TX model for an arbitrary target point.
    let demo_beam = tx_vr.trace(0.3, -0.2).unwrap();
    let target = demo_beam.point_at(1.75);
    let gp = gprime_default(&tx_vr, target, (0.0, 0.0));
    println!(
        "  G' demo: target on a known beam recovered in {} iterations (miss {:.3} mm)",
        gp.iterations,
        gp.miss_distance * 1e3
    );

    // P: the full four-voltage solution.
    let p = pointing_default(&tx_vr, &rx_vr, [0.0; 4]);
    println!(
        "  P converged in {} outer iterations ({} total G' iterations)",
        p.iterations, p.gprime_iterations
    );
    dep.set_voltages(p.voltages[0], p.voltages[1], p.voltages[2], p.voltages[3]);
    let tp_power = dep.received_power_dbm();

    // Compare against the ground-truth optimum found by exhaustive search.
    let ex = exhaustive_align(&mut dep);
    println!(
        "  TP power {tp_power:.1} dBm vs exhaustive-search optimum {:.1} dBm",
        ex.power_dbm
    );
    println!(
        "  link {}",
        if tp_power >= dep.design.sfp.rx_sensitivity_dbm {
            "UP — pointing without any optical feedback"
        } else {
            "DOWN"
        }
    );
}
