//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` entry points the Cyclops crates actually use are
//! reimplemented here behind the same paths (`rand::Rng`,
//! `rand::SeedableRng`, `rand::rngs::StdRng`). The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! high-quality, and `Clone`/`Debug` like the real `StdRng`.
//!
//! Only the surface used in-tree is provided: `seed_from_u64`,
//! `gen_range(Range<_>)` for the common float/integer types, `gen_bool`,
//! and raw word output via `RngCore`. Streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which is fine: the workspace only relies
//! on determinism-per-seed and statistical quality, never on exact values.

#![deny(missing_docs)]

/// Low-level generator interface: raw random words and bytes.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// A range a value can be uniformly sampled from (the subset of
/// `rand::distributions::uniform` machinery the workspace needs).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "empty gen_range {}..{}",
            self.start,
            self.end
        );
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the (exclusive) end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive gen_range {lo}..={hi}");
        // Uniform on [lo, hi]: the closed upper end has measure zero for
        // continuous draws, so the half-open sampler with a clamp suffices.
        (lo + unit_f64(rng) * (hi - lo)).min(hi)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (std::ops::Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_single(rng) as f32
    }
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2⁻⁶⁴
                // per draw, far below anything the simulations resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let m = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((lo as $wide).wrapping_add(m as $wide)) as $t
            }
        }
    )*};
}

int_range_impl!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// High-level convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (e.g. `rng.gen_range(-1.0..1.0)`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: byte-seed plus the `seed_from_u64` helper
/// every call site in this workspace uses).
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 expansion (matches the
    /// upstream contract: any `u64` gives a well-mixed full seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0.0..1.0f64), c.gen_range(0.0..1.0f64));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..3.5f64);
            assert!((-2.5..3.5).contains(&f));
            let i: i32 = rng.gen_range(-4..9);
            assert!((-4..9).contains(&i));
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn float_draws_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
