//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access; this crate keeps the
//! workspace's `cargo bench` targets compiling and producing useful timing
//! numbers through the same API surface (`Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `black_box`,
//! `criterion_group!`/`criterion_main!`).
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples whose per-sample iteration count is auto-scaled to
//! a fixed time budget. Median, min and max per-iteration times are printed
//! in a `name ... time: [min median max]` line, close enough to upstream's
//! output to be read (and grepped) the same way. No statistics beyond that,
//! no plotting, no baseline storage.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// vendored implementation runs one routine call per setup call regardless).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed to it by a benchmark target.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `self.iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasureConfig {
    fn default() -> MeasureConfig {
        MeasureConfig {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, cfg: &MeasureConfig, mut f: F) {
    // Warm-up: also calibrates the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
    }
    let budget = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| {
        Duration::from_secs_f64(samples[((samples.len() - 1) as f64 * q).round() as usize])
    };
    println!(
        "{id:<55} time: [{} {} {}]",
        fmt_time(pick(0.0)),
        fmt_time(pick(0.5)),
        fmt_time(pick(1.0)),
    );
}

/// The benchmark driver handed to every target function.
#[derive(Default)]
pub struct Criterion {
    cfg: MeasureConfig,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, &self.cfg, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            cfg: self.cfg,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration overrides.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: MeasureConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &self.cfg, f);
        self
    }

    /// Ends the group (no-op; for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a bare `--test` run (from
            // `cargo test --benches`) should not burn time measuring.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
