//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of proptest the workspace's property tests use: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), range/tuple strategies,
//! `prop_map`/`prop_filter`, `any::<T>()`, `prop::collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated inputs as-is), and case generation is driven by the workspace's
//! deterministic `StdRng`. Case counts default to 256 like upstream and can
//! be lowered globally with `PROPTEST_CASES`.

#![deny(missing_docs)]

pub mod strategy;

pub use strategy::Strategy;

/// Test-runner configuration and plumbing used by the macros.
pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Maximum rejected generations (filters + `prop_assume!`) before
        /// the property errors out.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Marker returned by `prop_assume!` when a case must be re-drawn.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// The deterministic RNG driving generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the per-property RNG: deterministic from the property name so
    /// every test function explores an independent, reproducible stream.
    pub fn rng_for(name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.gen_value(rng)?);
            }
            Some(out)
        }
    }
}

/// Equivalent of `prop_assert!`: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Equivalent of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            panic!("prop_assert_eq! failed: {:?} != {:?}", va, vb);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            panic!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                va, vb, format!($($fmt)*)
            );
        }
    }};
}

/// Equivalent of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            panic!("prop_assert_ne! failed: both sides are {:?}", va);
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            panic!(
                "prop_assert_ne! failed: both sides are {:?}: {}",
                va, format!($($fmt)*)
            );
        }
    }};
}

/// Equivalent of `prop_assume!`: rejects the current case (it is re-drawn
/// and not counted) when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Err($crate::test_runner::Rejected);
        }
    };
}

/// The `proptest!` block macro: wraps each contained function in a runner
/// that generates inputs from the given strategies and executes the body
/// for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __strategy = ($($strat,)+);
                let mut __case = 0u32;
                let mut __rejects = 0u32;
                while __case < __config.cases {
                    let __vals = loop {
                        match $crate::Strategy::gen_value(&__strategy, &mut __rng) {
                            Some(v) => break v,
                            None => {
                                __rejects += 1;
                                assert!(
                                    __rejects < __config.max_global_rejects,
                                    "proptest: too many generator rejections in {}",
                                    stringify!($name),
                                );
                            }
                        }
                    };
                    let __outcome = (move || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                        let ($($arg,)+) = __vals;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => __case += 1,
                        Err(_) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.max_global_rejects,
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}
