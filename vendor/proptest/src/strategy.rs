//! Strategies: composable value generators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of test values. `gen_value` returns `None` when the drawn
/// value is rejected (e.g. by [`Strategy::prop_filter`]); the runner then
/// re-draws without counting the case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value (or rejects).
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (`whence` labels the filter for
    /// diagnostics, as in upstream proptest).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.gen_value(rng).filter(&self.pred)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> Option<f64> {
        Some(rng.gen_range(self.clone()))
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> Option<f32> {
        Some(rng.gen_range(self.clone()))
    }
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.gen_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (whole domain for primitives).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain generator for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                #[allow(clippy::redundant_closure_call)]
                Some(($gen)(rng))
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

use rand::RngCore;

arbitrary_prim!(
    bool => |r: &mut TestRng| r.next_u64() & 1 == 1,
    u8 => |r: &mut TestRng| r.next_u64() as u8,
    u16 => |r: &mut TestRng| r.next_u64() as u16,
    u32 => |r: &mut TestRng| r.next_u32(),
    u64 => |r: &mut TestRng| r.next_u64(),
    usize => |r: &mut TestRng| r.next_u64() as usize,
    i8 => |r: &mut TestRng| r.next_u64() as i8,
    i16 => |r: &mut TestRng| r.next_u64() as i16,
    i32 => |r: &mut TestRng| r.next_u64() as i32,
    i64 => |r: &mut TestRng| r.next_u64() as i64,
    isize => |r: &mut TestRng| r.next_u64() as isize,
    // Finite floats spanning a wide magnitude band (no NaN/inf: the
    // workspace's properties all assume finite inputs, as upstream's
    // default `any::<f64>()` config does for the common cases).
    f64 => |r: &mut TestRng| {
        let mag = rand::Rng::gen_range(r, -300.0..300.0f64);
        let sign = if r.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * mag.exp2()
    },
    f32 => |r: &mut TestRng| {
        let mag = rand::Rng::gen_range(r, -30.0..30.0f64);
        let sign = if r.next_u64() & 1 == 1 { 1.0f32 } else { -1.0 };
        sign * (mag.exp2() as f32)
    },
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_tuples_map_filter_compose() {
        let mut rng = rng_for("compose");
        let s = (0.0..1.0f64, 1..10i32)
            .prop_map(|(f, i)| f + i as f64)
            .prop_filter("big enough", |v| *v > 2.0);
        let mut got = 0;
        for _ in 0..1000 {
            if let Some(v) = s.gen_value(&mut rng) {
                assert!(v > 2.0 && v < 11.0);
                got += 1;
            }
        }
        assert!(got > 100, "filter passed only {got}/1000");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = rng_for("vecsize");
        let s = crate::collection::vec(0.0..1.0f64, 2..7);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!((2..7).contains(&v.len()));
        }
    }
}
